"""The top-level (L)SLP vectorization pass (paper Figure 1).

:class:`VectorizerConfig` captures one experimental configuration; the
paper's four appear as factory methods:

* ``VectorizerConfig.o3()`` — vectorization disabled entirely,
* ``VectorizerConfig.slp_nr()`` — SLP with operand reordering disabled,
* ``VectorizerConfig.slp()`` — vanilla SLP (opcode/consecutive-load
  reordering, no look-ahead, no multi-nodes),
* ``VectorizerConfig.lslp()`` — the paper's contribution (multi-nodes +
  look-ahead reordering), with the depth and multi-node size knobs the
  Figure 13 sensitivity study sweeps.

:class:`SLPVectorizer` drives each block through the three phases of
:mod:`repro.slp.plan`:

1. **plan** — enumerate immutable :class:`~repro.slp.plan.TreePlan`
   candidates (full width, both halves eagerly, reductions, optional
   policy variants) without touching the IR, on an isolated analysis
   context and a phase-scoped budget meter;
2. **select** — resolve conflicts between overlapping candidates.  The
   default ``plan_select="legacy"`` skips selection entirely and lets
   the applier's greedy first-fit decide, reproducing the historical
   pipeline byte-for-byte; ``"greedy-savings"``/``"exhaustive"`` pick
   the best non-conflicting subset by plan-time total cost;
3. **apply** — materialize trees through ``VectorCodeGen`` in
   deterministic order, rebuilding and re-checking each on the current
   IR.

Afterwards every candidate's fate (applied, or rejected with a reason)
is reconciled into ``select``/``reject`` records and the plan sink.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from ..analysis.aliasing import AliasAnalysis
from ..analysis.scev import ScalarEvolution
from ..costmodel.targets import skylake_like
from ..costmodel.tti import TargetCostModel
from ..ir.basicblock import BasicBlock
from ..ir.function import Function, Module
from ..obs import metrics as _metrics
from ..obs import records as _records
from ..obs.tracing import span
from ..robustness.budget import Budget, BudgetMeter, ModuleMeter
from ..robustness.diagnostics import Remark, Severity
from .builder import BuildPolicy, BuildStats
from .lookahead import LookAheadContext, get_lookahead_score
from .plan import (
    MODULE_SELECT_MODES,
    PLAN_SELECT_MODES,
    Applier,
    FunctionPlan,
    ModulePlan,
    ModuleSelector,
    Planner,
    Selection,
    Selector,
    TreeRecord,
    record_outcomes,
)
from .seeds import collect_store_seeds


@dataclass(frozen=True)
class VectorizerConfig:
    """One vectorizer configuration (paper §5.1)."""

    name: str = "lslp"
    #: master switch: False reproduces plain -O3 (no vectorization)
    enabled: bool = True
    #: apply operand reordering at commutative nodes
    enable_reordering: bool = True
    #: look-ahead depth (0 = vanilla SLP's heuristic)
    look_ahead_depth: int = 8
    #: maximum multi-node size in chained groups (None = unbounded,
    #: 1 = multi-nodes disabled)
    multi_node_max_size: Optional[int] = 1
    #: also vectorize reduction-tree seeds
    enable_reductions: bool = True
    #: vectorize only when the tree cost is strictly below this
    cost_threshold: int = 0
    #: look-ahead score aggregation (paper footnote 4 ablation)
    score_function: object = get_lookahead_score
    #: operand reordering strategy ("greedy" per the paper, or
    #: "exhaustive" for the backtracking ablation)
    reorder_strategy: str = "greedy"
    #: SPLAT-mode detection in the reorderer (ablation knob)
    enable_splat_detection: bool = True
    #: resource budget (look-ahead evals, reorder assignments, wall
    #: clock); ``None`` = unlimited, the historical behaviour
    budget: Optional[Budget] = None
    #: plan-selection mode: "legacy" (default) reproduces the greedy
    #: first-fit byte-for-byte; "greedy-savings"/"exhaustive" pick the
    #: best non-conflicting candidate subset by plan-time cost per
    #: block; "module-greedy"/"module-exhaustive" pool every block of
    #: every function and spend one shared selection budget where the
    #: projected savings are largest
    plan_select: str = "legacy"
    #: extra build policies ("slp-nr", "slp", "lslp") the planner
    #: enumerates per seed for comparison; informational only, never
    #: applied
    plan_policy_variants: tuple[str, ...] = ()
    #: selection-time penalty per vector register a plan needs beyond
    #: the target's register file (repro.slp.pressure); 0 disables the
    #: pressure term entirely
    reg_pressure_weight: int = 0
    #: if-conversion mode (repro.opt.ifconvert): "off" (default, keeps
    #: every historical pipeline byte-identical), "on" (flatten every
    #: legal hammock/diamond so SLP can pack across the former branch),
    #: or "cost" (flatten only when the speculated work does not exceed
    #: the branch-removal savings)
    ifconvert: str = "off"
    #: unroll-and-SLP mode (repro.opt.unroll): partially unroll loops
    #: that full unrolling refuses (symbolic bounds, trips beyond the
    #: cap) by a target-derived factor with a scalar epilogue, so SLP
    #: packs across iterations; off by default to keep every historical
    #: pipeline byte-identical
    loop_vectorize: bool = False
    #: full-unroll trip-count cap override (None = MAX_TRIP_COUNT)
    unroll_max_trip: Optional[int] = None

    # ---- the paper's configurations -----------------------------------

    @staticmethod
    def o3() -> "VectorizerConfig":
        """-O3 with all vectorizers disabled."""
        return VectorizerConfig(name="O3", enabled=False)

    @staticmethod
    def slp_nr() -> "VectorizerConfig":
        """SLP with operand reordering disabled (No Rotation)."""
        return VectorizerConfig(
            name="SLP-NR",
            enable_reordering=False,
            look_ahead_depth=0,
            multi_node_max_size=1,
        )

    @staticmethod
    def slp() -> "VectorizerConfig":
        """Vanilla SLP: opcode-based reordering, no look-ahead."""
        return VectorizerConfig(
            name="SLP",
            enable_reordering=True,
            look_ahead_depth=0,
            multi_node_max_size=1,
        )

    @staticmethod
    def lslp(look_ahead_depth: int = 8,
             multi_node_max_size: Optional[int] = None,
             name: Optional[str] = None) -> "VectorizerConfig":
        """Look-ahead SLP; knobs match the Figure 13 sensitivity study."""
        if name is None:
            name = "LSLP"
        return VectorizerConfig(
            name=name,
            enable_reordering=True,
            look_ahead_depth=look_ahead_depth,
            multi_node_max_size=multi_node_max_size,
        )

    def with_name(self, name: str) -> "VectorizerConfig":
        return replace(self, name=name)

    def with_budget(self, budget: Optional[Budget]) -> "VectorizerConfig":
        return replace(self, budget=budget)

    def with_plan_select(self, mode: str) -> "VectorizerConfig":
        return replace(self, plan_select=mode)

    def build_policy(self, meter: Optional[BudgetMeter] = None
                     ) -> BuildPolicy:
        return BuildPolicy(
            enable_reordering=self.enable_reordering,
            look_ahead_depth=self.look_ahead_depth,
            multi_node_max_size=self.multi_node_max_size,
            score_function=self.score_function,
            reorder_strategy=self.reorder_strategy,
            enable_splat_detection=self.enable_splat_detection,
            meter=meter,
        )


@dataclass
class VectorizationReport:
    """Everything the experiments need to know about one function run."""

    function: str
    config: str
    trees: list[TreeRecord] = field(default_factory=list)
    stats: BuildStats = field(default_factory=BuildStats)
    #: budget / degradation remarks emitted while vectorizing
    remarks: list[Remark] = field(default_factory=list)

    @property
    def vectorized_trees(self) -> list[TreeRecord]:
        return [t for t in self.trees if t.vectorized]

    @property
    def num_vectorized(self) -> int:
        return len(self.vectorized_trees)

    @property
    def total_cost(self) -> int:
        """Static cost of the vectorization actually performed (Figure
        10's metric: the sum over accepted trees; 0 when nothing was
        vectorized)."""
        return sum(t.cost for t in self.vectorized_trees)

    def merge(self, other: "VectorizationReport") -> None:
        self.trees.extend(other.trees)
        self.remarks.extend(other.remarks)
        self.stats.nodes += other.stats.nodes
        self.stats.multi_nodes += other.stats.multi_nodes
        self.stats.gathers += other.stats.gathers
        self.stats.reorders += other.stats.reorders
        self.stats.lookahead_evals += other.stats.lookahead_evals


class SLPVectorizer:
    """Runs one configuration over functions/modules, rewriting the IR."""

    def __init__(self, config: Optional[VectorizerConfig] = None,
                 target: Optional[TargetCostModel] = None):
        self.config = config if config is not None else VectorizerConfig.lslp()
        self.target = target if target is not None else skylake_like()
        if self.config.plan_select not in PLAN_SELECT_MODES:
            raise ValueError(
                f"unknown plan-select mode {self.config.plan_select!r}; "
                f"use one of {', '.join(PLAN_SELECT_MODES)}"
            )

    # ------------------------------------------------------------------

    def run_module(self, module: Module,
                   module_meter: Optional[ModuleMeter] = None
                   ) -> VectorizationReport:
        if (module_meter is None and self.config.budget is not None
                and self.config.budget.has_module_caps):
            module_meter = ModuleMeter(self.config.budget)
        if (self.config.enabled
                and self.config.plan_select in MODULE_SELECT_MODES):
            driver = ModuleVectorizationDriver(self.config, self.target,
                                               module_meter)
            funcs = list(module.functions.values())
            for func in funcs:
                driver.plan_function(func)
            driver.select()
            report = VectorizationReport("<module>", self.config.name)
            for func in funcs:
                report.merge(driver.apply_function(func))
            return report
        report = VectorizationReport("<module>", self.config.name)
        for func in module.functions.values():
            report.merge(self.run_function(func, module_meter))
        return report

    def run_function(self, func: Function,
                     module_meter: Optional[ModuleMeter] = None
                     ) -> VectorizationReport:
        report = VectorizationReport(func.name, self.config.name)
        if not self.config.enabled:
            return report
        if self.config.plan_select in MODULE_SELECT_MODES:
            # A lone function is its own module: candidates from all of
            # its blocks are pooled and selected in one pass.
            driver = ModuleVectorizationDriver(self.config, self.target,
                                               module_meter)
            driver.plan_function(func)
            driver.select()
            return driver.apply_function(func)
        meter = BudgetMeter(self.config.budget, module=module_meter)
        meter.start_function()
        #: function-scope plan ids, so records stay unambiguous across
        #: blocks
        plan_ids = itertools.count()
        # Ambient record context: deep layers (builder, reorderer,
        # budget meters) emit decision records without threading names.
        context = _records.push_context(
            function=func.name, config=self.config.name,
            **{"pass": "slp"},
        )
        try:
            with span("slp.function", function=func.name,
                      config=self.config.name):
                for block in func.blocks:
                    self._run_block(block, report, meter, plan_ids)
        finally:
            _records.restore_context(context)
        for event in meter.events:
            report.remarks.append(_budget_remark(func.name, event))
        self._publish_metrics(report, meter)
        return report

    # ------------------------------------------------------------------

    def _run_block(self, block: BasicBlock, report: VectorizationReport,
                   meter: Optional[BudgetMeter] = None,
                   plan_ids: Optional[itertools.count] = None) -> None:
        meter = meter if meter is not None else BudgetMeter()

        # Apply-phase analyses are rebuilt per block: code generation
        # invalidates cached positions but not SCEV facts; a fresh
        # context is cheap and always sound.  Seeds are collected with
        # the *apply* context so its caches populate exactly as the
        # historical pipeline's did.
        ctx = LookAheadContext(ScalarEvolution())
        aa = AliasAnalysis(ctx.scev)
        seeds = collect_store_seeds(block, ctx.scev, self.target)

        # Phase 1 — plan.  Isolated analysis context (shared SCEV caches
        # would leak pre-mutation facts into apply-time builds) and a
        # phase-scoped meter (planning must not perturb apply-phase
        # budget accounting).
        plan_ctx = LookAheadContext(ScalarEvolution())
        plan_aa = AliasAnalysis(plan_ctx.scev)
        planner = Planner(self.config, self.target, ids=plan_ids)
        block_plan = planner.plan_block(block, seeds, plan_ctx, plan_aa,
                                        meter.phase_meter())

        # Phase 2 — select.  Legacy mode defers to the applier's greedy
        # first-fit; selection charges the function meter.
        selection: Optional[Selection] = None
        if self.config.plan_select != "legacy":
            selection = Selector(self.config).select(block_plan, meter)

        # Phase 3 — apply, then reconcile what actually happened with
        # what was planned.
        applier = Applier(self.config, self.target)
        applier.apply(block, block_plan, selection, seeds, ctx, aa,
                      report, meter)
        record_outcomes(block_plan, applier, self.config.plan_select,
                        self.config.cost_threshold, selection)

    def _publish_metrics(self, report: VectorizationReport,
                         meter: BudgetMeter) -> None:
        _publish_report_metrics(report)


def _publish_report_metrics(report: VectorizationReport) -> None:
    """Publish one function's tallies into the metrics registry (one
    flag check when publication is off)."""
    if not _metrics.publishing():
        return
    stats = report.stats
    _metrics.add("slp.trees_built", len(report.trees))
    _metrics.add("slp.groups_vectorized", report.num_vectorized)
    _metrics.add("slp.nodes", stats.nodes)
    _metrics.add("slp.multi_nodes", stats.multi_nodes)
    _metrics.add("slp.gathers", stats.gathers)
    _metrics.add("reorder.reorders", stats.reorders)
    _metrics.add("lookahead.evals", stats.lookahead_evals)


def _budget_remark(function: str, event) -> Remark:
    return Remark(
        Severity.WARNING, "budget", event.detail,
        function=function, pass_name="slp", phase="budget",
        remediation="raise the Budget caps, or accept the "
                    "greedy/scalar degradation",
    )


# ---------------------------------------------------------------------------
# Module-scoped two-phase driver
# ---------------------------------------------------------------------------


@dataclass
class _PlannedBlock:
    """One block's phase-1 state, held until the apply phase."""

    block: BasicBlock
    seeds: list
    block_plan: object
    ctx: LookAheadContext
    aa: AliasAnalysis


@dataclass
class _PlannedFunction:
    func: Function
    report: VectorizationReport
    meter: BudgetMeter
    blocks: list[_PlannedBlock] = field(default_factory=list)


class ModuleVectorizationDriver:
    """The two-phase, module-scoped plan/select/apply flow.

    Phase 1 (:meth:`plan_function`, once per function) enumerates
    candidates for every block read-only, pooling them into one
    :class:`~repro.slp.plan.ModulePlan` with module-wide plan ids.
    Phase 2 (:meth:`select`) runs the module-scope selector over the
    pooled candidates, spending the one shared selection budget where
    projected savings are largest.  :meth:`apply_function` then
    materializes one function's share of the verdicts — callable per
    function so a guarded pipeline (``repro.opt.pipelines``) can wrap
    each function's apply in its own pass guard.

    Seeds and apply-phase analysis contexts are captured at plan time;
    the applier re-checks liveness and rebuilds every tree on the
    current IR, so cross-function ordering cannot invalidate a verdict
    silently.
    """

    def __init__(self, config: VectorizerConfig,
                 target: Optional[TargetCostModel] = None,
                 module_meter: Optional[ModuleMeter] = None):
        if config.plan_select not in MODULE_SELECT_MODES:
            raise ValueError(
                f"not a module plan-select mode {config.plan_select!r};"
                f" use one of {', '.join(MODULE_SELECT_MODES)}"
            )
        self.config = config
        self.target = target if target is not None else skylake_like()
        if (module_meter is None and config.budget is not None
                and config.budget.has_module_caps):
            module_meter = ModuleMeter(config.budget)
        self.module_meter = module_meter
        self.module_plan = ModulePlan()
        self._plan_ids = itertools.count()
        self._planned: dict[str, _PlannedFunction] = {}
        self._selections: Optional[dict] = None
        self._select_events: list = []

    # ------------------------------------------------------------------

    def plan_function(self, func: Function) -> None:
        """Phase 1 for one function: enumerate every block's candidates
        without touching the IR."""
        report = VectorizationReport(func.name, self.config.name)
        meter = BudgetMeter(self.config.budget, module=self.module_meter)
        meter.start_function()
        planned = _PlannedFunction(func, report, meter)
        fplan = FunctionPlan(func.name)
        context = _records.push_context(
            function=func.name, config=self.config.name,
            **{"pass": "slp"},
        )
        try:
            with span("slp.module_plan", function=func.name,
                      config=self.config.name):
                for block in func.blocks:
                    # Apply-phase analyses, captured now, used in phase
                    # 3; the planner gets its own isolated context, as
                    # in the per-block flow.
                    ctx = LookAheadContext(ScalarEvolution())
                    aa = AliasAnalysis(ctx.scev)
                    seeds = collect_store_seeds(block, ctx.scev,
                                                self.target)
                    plan_ctx = LookAheadContext(ScalarEvolution())
                    plan_aa = AliasAnalysis(plan_ctx.scev)
                    planner = Planner(self.config, self.target,
                                      ids=self._plan_ids,
                                      function=func.name)
                    block_plan = planner.plan_block(
                        block, seeds, plan_ctx, plan_aa,
                        meter.phase_meter(),
                    )
                    planned.blocks.append(
                        _PlannedBlock(block, seeds, block_plan, ctx, aa)
                    )
                    fplan.blocks.append(block_plan)
        finally:
            _records.restore_context(context)
        self._planned[func.name] = planned
        self.module_plan.functions.append(fplan)

    def select(self) -> None:
        """Phase 2: one module-scope selection over the pooled
        candidates (idempotent)."""
        if self._selections is not None:
            return
        select_meter = BudgetMeter(self.config.budget,
                                   module=self.module_meter)
        self._selections = ModuleSelector(self.config).select(
            self.module_plan, select_meter
        )
        self._select_events = list(select_meter.events)

    def apply_function(self, func: Function) -> VectorizationReport:
        """Phase 3 for one function: materialize its share of the
        module selection in deterministic plan order."""
        self.select()
        planned = self._planned[func.name]
        report, meter = planned.report, planned.meter
        context = _records.push_context(
            function=func.name, config=self.config.name,
            **{"pass": "slp"},
        )
        try:
            with span("slp.function", function=func.name,
                      config=self.config.name):
                for pb in planned.blocks:
                    selection = self._selections.get(
                        (func.name, pb.block.name)
                    )
                    if selection is None:
                        selection = Selection(
                            mode=self.config.plan_select, chosen=(),
                            planned_total=0, note="first-fit",
                        )
                    applier = Applier(self.config, self.target)
                    applier.apply(pb.block, pb.block_plan, selection,
                                  pb.seeds, pb.ctx, pb.aa, report,
                                  meter)
                    record_outcomes(pb.block_plan, applier,
                                    self.config.plan_select,
                                    self.config.cost_threshold,
                                    selection)
        finally:
            _records.restore_context(context)
        for event in meter.events:
            report.remarks.append(_budget_remark(func.name, event))
        # Module-scope selection events surface once, on the first
        # function whose apply phase runs.
        for event in self._select_events:
            report.remarks.append(_budget_remark(func.name, event))
        self._select_events = []
        _publish_report_metrics(report)
        return report


__all__ = [
    "MODULE_SELECT_MODES",
    "ModuleVectorizationDriver",
    "PLAN_SELECT_MODES",
    "SLPVectorizer",
    "TreeRecord",
    "VectorizationReport",
    "VectorizerConfig",
]
