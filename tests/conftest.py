"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import compile_kernel_source
from repro.ir import Function, IRBuilder, Module, verify_function


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Leave the observability layer disabled and empty around every
    test, whatever order tests run in (pytest-randomly safe)."""
    import repro.obs

    repro.obs.reset()
    yield
    repro.obs.reset()


@pytest.fixture
def module():
    return Module("test")


@pytest.fixture
def func_builder():
    """A (function, IRBuilder) pair with an empty entry block."""
    from repro.ir import I64

    func = Function("f", [("i", I64)])
    block = func.add_block("entry")
    return func, IRBuilder(block)


def build_kernel(source: str, entry: str = "kernel"):
    """Compile mini-C ``source`` and return (module, entry function)."""
    module = compile_kernel_source(source)
    return module, module.get_function(entry)


def assert_verifies(func: Function) -> None:
    verify_function(func)
