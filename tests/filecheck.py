"""A miniature FileCheck: pattern-directive checking for printed IR.

Compiler test suites (LLVM's ``lit`` + ``FileCheck``) express golden
tests as source files with embedded directives; the test runner compiles
the source and verifies the output against the directives.  This module
implements the directive subset those tests need:

* ``CHECK: <pattern>`` — the pattern must match on some line at or after
  the previous match.
* ``CHECK-NEXT: <pattern>`` — the pattern must match on the line
  immediately after the previous match.
* ``CHECK-NOT: <pattern>`` — the pattern must not match anywhere between
  the previous match and the next positive match (or EOF).
* ``CHECK-DAG: <pattern>`` — like CHECK but a consecutive group of DAG
  directives may match in any order.

Patterns are literal text, except ``{{...}}`` which encloses a regular
expression, and ``[[NAME:...]]`` / ``[[NAME]]`` which capture and reuse
a named string (for matching SSA value names).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class FileCheckError(AssertionError):
    """A directive failed to match; the message shows the context."""


@dataclass
class Directive:
    kind: str          #: "CHECK", "CHECK-NEXT", "CHECK-NOT", "CHECK-DAG"
    pattern: str
    line_no: int


_DIRECTIVE_RE = re.compile(
    r"(?://|;|#)\s*(?P<kind>CHECK(?:-NEXT|-NOT|-DAG)?):\s*(?P<pattern>.*\S)?"
)


def parse_directives(source: str) -> list[Directive]:
    """Extract CHECK directives from a source file's comments."""
    directives: list[Directive] = []
    for line_no, line in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE_RE.search(line)
        if match:
            directives.append(Directive(
                match.group("kind"),
                match.group("pattern") or "",
                line_no,
            ))
    return directives


def _compile_pattern(pattern: str, variables: dict[str, str]) -> re.Pattern:
    """Translate a directive pattern into a regex, resolving variables."""
    parts: list[str] = []
    pos = 0
    token = re.compile(
        r"\{\{(?P<regex>.*?)\}\}"
        r"|\[\[(?P<name>\w+):(?P<capture>.*?)\]\]"
        r"|\[\[(?P<ref>\w+)\]\]"
    )
    for match in token.finditer(pattern):
        parts.append(re.escape(pattern[pos:match.start()]))
        if match.group("regex") is not None:
            parts.append(f"(?:{match.group('regex')})")
        elif match.group("name") is not None:
            parts.append(
                f"(?P<{match.group('name')}>{match.group('capture')})"
            )
        else:
            name = match.group("ref")
            if name not in variables:
                raise FileCheckError(
                    f"use of undefined FileCheck variable [[{name}]]"
                )
            parts.append(re.escape(variables[name]))
        pos = match.end()
    parts.append(re.escape(pattern[pos:]))
    return re.compile("".join(parts))


@dataclass
class _State:
    lines: list[str]
    cursor: int = 0                      #: next line index to search from
    variables: dict[str, str] = field(default_factory=dict)


def _find_match(state: _State, directive: Directive, start: int,
                end: int | None = None) -> int | None:
    regex = _compile_pattern(directive.pattern, state.variables)
    stop = len(state.lines) if end is None else end
    for index in range(start, stop):
        match = regex.search(state.lines[index])
        if match:
            state.variables.update({
                key: value
                for key, value in match.groupdict().items()
                if value is not None
            })
            return index
    return None


def run_filecheck(output: str, source: str) -> None:
    """Check ``output`` against the directives embedded in ``source``.

    Raises :class:`FileCheckError` with a detailed message on the first
    failed directive.
    """
    directives = parse_directives(source)
    if not directives:
        raise FileCheckError("no CHECK directives found in test source")
    state = _State(output.splitlines())

    index = 0
    while index < len(directives):
        directive = directives[index]
        if directive.kind == "CHECK-NOT":
            # collect the NOT block, bounded by the next positive match
            nots = []
            while (index < len(directives)
                   and directives[index].kind == "CHECK-NOT"):
                nots.append(directives[index])
                index += 1
            boundary = None
            if index < len(directives):
                boundary = _positive_match(state, directives[index])
            limit = boundary if boundary is not None else len(state.lines)
            for not_directive in nots:
                hit = _find_match(state, not_directive, state.cursor, limit)
                if hit is not None:
                    _fail(not_directive, state, hit,
                          "CHECK-NOT pattern matched")
            if index < len(directives):
                if boundary is None:
                    _fail(directives[index], state, None, "no match")
                state.cursor = boundary + 1
                index += 1
            continue
        if directive.kind == "CHECK-DAG":
            group = []
            while (index < len(directives)
                   and directives[index].kind == "CHECK-DAG"):
                group.append(directives[index])
                index += 1
            block_end = state.cursor
            for dag in group:
                hit = _find_match(state, dag, state.cursor)
                if hit is None:
                    _fail(dag, state, None, "no match")
                block_end = max(block_end, hit + 1)
            state.cursor = block_end
            continue
        if directive.kind == "CHECK-NEXT":
            if state.cursor >= len(state.lines):
                _fail(directive, state, None, "ran out of output")
            regex = _compile_pattern(directive.pattern, state.variables)
            match = regex.search(state.lines[state.cursor])
            if not match:
                _fail(directive, state, state.cursor,
                      "CHECK-NEXT did not match the next line")
            state.variables.update({
                key: value
                for key, value in match.groupdict().items()
                if value is not None
            })
            state.cursor += 1
            index += 1
            continue
        # plain CHECK
        hit = _positive_match(state, directive)
        if hit is None:
            _fail(directive, state, None, "no match")
        state.cursor = hit + 1
        index += 1


def _positive_match(state: _State, directive: Directive) -> int | None:
    return _find_match(state, directive, state.cursor)


def _fail(directive: Directive, state: _State, line_index: int | None,
          reason: str):
    context_start = max(0, state.cursor - 2)
    context = "\n".join(
        f"    {i + 1:4}: {line}"
        for i, line in enumerate(
            state.lines[context_start:state.cursor + 6],
            start=context_start,
        )
    )
    where = (
        f" (output line {line_index + 1})" if line_index is not None else ""
    )
    raise FileCheckError(
        f"{directive.kind} (test line {directive.line_no}): {reason}{where}\n"
        f"  pattern: {directive.pattern!r}\n"
        f"  searching from output line {state.cursor + 1}\n"
        f"  output context:\n{context}"
    )


__all__ = [
    "Directive",
    "FileCheckError",
    "parse_directives",
    "run_filecheck",
]
