// An in-tree value with a scalar user outside the tree gets one
// extractelement feeding that user.
// CONFIG: lslp
long A[1024], B[1024], C[1024];
void kernel(long i) {
    long t0 = B[i + 0] - C[i + 0];
    long t1 = B[i + 1] - C[i + 1];
    A[i + 0] = t0;
    A[i + 1] = t1;
    A[i + 32] = t1 * 3;
}
// CHECK: [[SUB:%vec[0-9]*]] = sub <2 x i64>
// CHECK: [[X:%ext[0-9]*]] = extractelement <2 x i64> [[SUB]], i32 1
// CHECK-DAG: store <2 x i64> [[SUB]]
// CHECK-DAG: mul i64 [[X]], i64 3
