// The paper's Figure 2 under LSLP: look-ahead recovers the consecutive
// loads hidden by swapped shift operands; everything vectorizes 2-wide.
// CONFIG: lslp
long A[1024], B[1024], C[1024];
void kernel(long i) {
    A[i + 0] = (B[i + 0] << 1) & (C[i + 0] << 2);
    A[i + 1] = (C[i + 1] << 3) & (B[i + 1] << 4);
}
// CHECK: define void @kernel(i64 %i)
// CHECK: [[B:%vec[0-9]*]] = load <2 x i64>
// CHECK-NEXT: [[SB:%vec[0-9]*]] = shl <2 x i64> [[B]], <2 x i64> <1, 4>
// CHECK-NEXT: [[C:%vec[0-9]*]] = load <2 x i64>
// CHECK-NEXT: [[SC:%vec[0-9]*]] = shl <2 x i64> [[C]], <2 x i64> <2, 3>
// CHECK-NEXT: [[AND:%vec[0-9]*]] = and <2 x i64> [[SB]], <2 x i64> [[SC]]
// CHECK-NEXT: store <2 x i64> [[AND]]
// CHECK-NOT: shl i64
