// The paper's Figure 2 under vanilla SLP: cost 0, nothing vectorizes.
// CONFIG: slp
long A[1024], B[1024], C[1024];
void kernel(long i) {
    A[i + 0] = (B[i + 0] << 1) & (C[i + 0] << 2);
    A[i + 1] = (C[i + 1] << 3) & (B[i + 1] << 4);
}
// CHECK: define void @kernel(i64 %i)
// CHECK-NOT: <2 x i64>
// CHECK: ret void
