// The paper's Figure 4 under LSLP: the re-associated & chains form one
// multi-node; its three operand slots align into two vector loads per
// array and a chain of two vector &s.
// CONFIG: lslp
unsigned long A[1024], B[1024], C[1024], D[1024], E[1024];
void kernel(long i) {
    A[i + 0] = A[i + 0] & (B[i + 0] + C[i + 0]) & (D[i + 0] + E[i + 0]);
    A[i + 1] = (D[i + 1] + E[i + 1]) & (B[i + 1] + C[i + 1]) & A[i + 1];
}
// CHECK-DAG: add <2 x i64>
// CHECK-DAG: load <2 x i64>
// CHECK: [[AND1:%vec[0-9]*]] = and <2 x i64>
// CHECK: [[AND2:%vec[0-9]*]] = and <2 x i64> [[AND1]],
// CHECK-NEXT: store <2 x i64> [[AND2]]
// CHECK-NOT: and i64
