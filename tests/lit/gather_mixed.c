// Mixed non-vectorizable operands are gathered with insertelement.
// CONFIG: lslp
long A[1024], B[1024], C[1024];
void kernel(long i, long k) {
    A[i + 0] = B[i + 0] - k;
    A[i + 1] = B[i + 1] - C[i + 5];
}
// CHECK: insertelement <2 x i64>
// CHECK: insertelement <2 x i64>
// CHECK: sub <2 x i64>
// CHECK: store <2 x i64>
