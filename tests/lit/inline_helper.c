// A helper function is inlined; the calls disappear and the inlined
// bodies vectorize as 4-wide reductions.
// CONFIG: lslp
double A[1024], V[4096];
double sumsq4(long base) {
    return V[base]*V[base] + V[base + 1]*V[base + 1]
         + V[base + 2]*V[base + 2] + V[base + 3]*V[base + 3];
}
void kernel(long i) {
    A[i + 0] = sumsq4(4*i);
    A[i + 1] = sumsq4(4*i + 4);
}
// CHECK: define void @kernel(i64 %i)
// CHECK-NOT: call
// CHECK: fmul <4 x f64>
// CHECK: shufflevector
// CHECK: extractelement <4 x f64>
// CHECK: store f64
