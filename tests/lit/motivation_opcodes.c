// The paper's Figure 3 under LSLP: shifts pair with shifts and adds
// with adds across the commutative + one level up.
// CONFIG: lslp
unsigned long A[1024], B[2048], C[2048], D[2048], E[2048];
void kernel(long i) {
    A[i + 0] = ((B[2*i] << 1) & 0x11) + ((C[2*i] + 2) & 0x12);
    A[i + 1] = ((D[2*i] + 3) & 0x13) + ((E[2*i] << 4) & 0x14);
}
// CHECK: shl <2 x i64>
// CHECK: and <2 x i64>
// CHECK: add <2 x i64> {{.*}}, <2 x i64> <2, 3>
// CHECK: and <2 x i64>
// CHECK: add <2 x i64>
// CHECK-NEXT: store <2 x i64>
