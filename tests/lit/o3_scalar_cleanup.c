// The O3 pipeline alone: constants fold, CSE merges the repeated
// address computation, and no vector code appears.
// CONFIG: o3
long A[1024], B[1024];
void kernel(long i) {
    long t = 2 * 3 + 1;
    A[i] = B[i] + t + 0;
    A[i + 63] = B[i] + t;
}
// CHECK: define void @kernel(i64 %i)
// CHECK: [[L:%ld[0-9]*]] = load i64
// CHECK: [[ADD:%add[0-9]*]] = add i64 [[L]], i64 7
// CHECK-NOT: load i64
// CHECK-NOT: mul
// CHECK: ret void
