// A 4-wide sum-of-squares reduction: one vector multiply, a logarithmic
// shuffle reduction, one extract, no scalar fmul left.
// CONFIG: lslp
double A[1024], V[1024];
void kernel(long i) {
    A[i] = V[i]*V[i] + V[i + 1]*V[i + 1]
         + V[i + 2]*V[i + 2] + V[i + 3]*V[i + 3];
}
// CHECK: [[V:%vec[0-9]*]] = load <4 x f64>
// CHECK-NEXT: [[M:%vec[0-9]*]] = fmul <4 x f64> [[V]], <4 x f64> [[V]]
// CHECK: shufflevector <4 x f64>
// CHECK: fadd <4 x f64>
// CHECK: shufflevector <4 x f64>
// CHECK: fadd <4 x f64>
// CHECK: extractelement <4 x f64>
// CHECK-NOT: fmul f64
