// A loop-invariant-like scalar shared by all lanes becomes one splat.
// CONFIG: lslp
long A[1024], B[1024];
void kernel(long i, long k) {
    A[i + 0] = B[i + 0] - k;
    A[i + 1] = B[i + 1] - k;
    A[i + 2] = B[i + 2] - k;
    A[i + 3] = B[i + 3] - k;
}
// CHECK: [[S:%splat[0-9]*]] = splat i64 %k, 4
// CHECK: sub <4 x i64> {{.*}}, <4 x i64> [[S]]
// CHECK: store <4 x i64>
