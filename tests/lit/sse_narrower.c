// On a 128-bit target the same 4-lane kernel splits into 2-wide groups.
// CONFIG: lslp
// TARGET: sse-like
double A[1024], B[1024], C[1024];
void kernel(long i) {
    A[i + 0] = B[i + 0] + C[i + 0];
    A[i + 1] = B[i + 1] + C[i + 1];
    A[i + 2] = B[i + 2] + C[i + 2];
    A[i + 3] = B[i + 3] + C[i + 3];
}
// CHECK: fadd <2 x f64>
// CHECK: fadd <2 x f64>
// CHECK-NOT: <4 x f64>
