// Seed lanes are ordered by address even when the program order is
// reversed; the vector store targets the lowest address.
// CONFIG: lslp
long A[1024], B[1024];
void kernel(long i) {
    A[i + 1] = B[i + 1] ^ 1;
    A[i + 0] = B[i + 0] ^ 2;
}
// CHECK: xor <2 x i64> {{.*}}, <2 x i64> <2, 1>
// CHECK: store <2 x i64>
