// A counted loop is fully unrolled and vectorized 4-wide; no control
// flow survives.
// CONFIG: lslp
long A[1024], B[1024], C[1024];
void kernel(long i) {
    for (long j = 0; j < 4; j = j + 1) {
        A[4*i + j] = B[4*i + j] * C[4*i + j] + 7;
    }
}
// CHECK: define void @kernel(i64 %i)
// CHECK-NOT: phi
// CHECK-NOT: condbr
// CHECK: mul <4 x i64>
// CHECK-NEXT: {{.*}}add <4 x i64> {{.*}}, <4 x i64> <7, 7, 7, 7>
// CHECK-NEXT: store <4 x i64>
