// SLP vectorizes inside a loop the unroller cannot remove (symbolic
// bound): the loop skeleton (phi/condbr) survives, the body is SIMD.
// CONFIG: lslp
long A[4096], B[4096], C[4096];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[4*j + 0] = B[4*j + 0] - C[4*j + 0];
        A[4*j + 1] = B[4*j + 1] - C[4*j + 1];
        A[4*j + 2] = B[4*j + 2] - C[4*j + 2];
        A[4*j + 3] = B[4*j + 3] - C[4*j + 3];
    }
}
// CHECK: loop.header:
// CHECK: %j = phi i64
// CHECK: condbr
// CHECK: loop.body:
// CHECK: load <4 x i64>
// CHECK: sub <4 x i64>
// CHECK: store <4 x i64>
// CHECK: br label %loop.header
// CHECK: loop.exit:
