"""Tests for alias analysis and scheduling legality."""

import pytest

from repro.analysis import (
    AliasAnalysis,
    AliasResult,
    bundle_is_schedulable,
    depends_on,
    same_block,
    TreeScheduler,
)
from repro.ir import (
    Function,
    GlobalArray,
    I64,
    IRBuilder,
    Module,
    PointerType,
)


@pytest.fixture
def env():
    module = Module("m")
    a = module.add_global(GlobalArray("A", I64, 64))
    b = module.add_global(GlobalArray("B", I64, 64))
    func = Function("f", [("i", I64)])
    builder = IRBuilder(func.add_block("entry"))
    return module, func, builder, a, b


class TestAliasAnalysis:
    def test_same_offset_must_alias(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        p0 = builder.gep(a, i)
        p1 = builder.gep(a, i)
        assert AliasAnalysis().alias(p0, p1) is AliasResult.MUST_ALIAS

    def test_different_offsets_no_alias(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        p0 = builder.gep(a, i)
        p1 = builder.gep(a, builder.add(i, builder.i64(1)))
        assert AliasAnalysis().alias(p0, p1) is AliasResult.NO_ALIAS

    def test_distinct_globals_no_alias(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        assert (
            AliasAnalysis().alias(builder.gep(a, i), builder.gep(b, i))
            is AliasResult.NO_ALIAS
        )

    def test_pointer_argument_may_alias_global(self, env):
        module, func, builder, a, b = env
        other = Function("g", [("p", PointerType(I64))])
        obuilder = IRBuilder(other.add_block("entry"))
        p = obuilder.gep(other.argument("p"), obuilder.i64(0))
        q = builder.gep(a, func.argument("i"))
        assert AliasAnalysis().alias(p, q) is AliasResult.MAY_ALIAS

    def test_symbolic_offsets_may_alias(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        opaque = builder.xor(i, builder.i64(3))
        p0 = builder.gep(a, i)
        p1 = builder.gep(a, opaque)
        assert AliasAnalysis().alias(p0, p1) is AliasResult.MAY_ALIAS

    def test_loads_never_conflict(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        l0 = builder.load(builder.gep(a, i))
        l1 = builder.load(builder.gep(a, i))
        assert not AliasAnalysis().instructions_may_conflict(l0, l1)

    def test_store_conflicts_with_same_location_load(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        ptr = builder.gep(a, i)
        load = builder.load(ptr)
        store = builder.store(load, ptr)
        assert AliasAnalysis().instructions_may_conflict(load, store)

    def test_vector_store_footprint_overlaps(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        p0 = builder.gep(a, i)
        p3 = builder.gep(a, builder.add(i, builder.i64(3)))
        vec = builder.vload(p0, 4)
        vstore = builder.store(vec, p0)        # covers [i, i+4)
        scalar_load = builder.load(p3)         # reads i+3: inside
        aa = AliasAnalysis()
        assert aa.instructions_may_conflict(vstore, scalar_load)
        p4 = builder.gep(a, builder.add(i, builder.i64(4)))
        outside = builder.load(p4)
        assert not aa.instructions_may_conflict(vstore, outside)


class TestDependence:
    def test_direct_dependence(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        x = builder.add(i, builder.i64(1))
        y = builder.add(x, builder.i64(2))
        assert depends_on(y, x)
        assert not depends_on(x, y)

    def test_transitive_dependence(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        x = builder.add(i, builder.i64(1))
        y = builder.add(x, builder.i64(2))
        z = builder.mul(y, y)
        assert depends_on(z, x)

    def test_bundle_of_independent_instructions(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        x = builder.add(i, builder.i64(1))
        y = builder.add(i, builder.i64(2))
        assert bundle_is_schedulable([x, y])

    def test_bundle_with_internal_dependence_rejected(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        x = builder.add(i, builder.i64(1))
        y = builder.add(x, builder.i64(2))
        assert not bundle_is_schedulable([x, y])

    def test_bundle_with_duplicate_rejected(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        x = builder.add(i, builder.i64(1))
        assert not bundle_is_schedulable([x, x])

    def test_same_block_helper(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        x = builder.add(i, builder.i64(1))
        other_block = func.add_block("bb2")
        from repro.ir import BinaryOperator, Constant

        y = BinaryOperator("add", i, Constant(I64, 1))
        other_block.append(y)
        assert same_block([x, x]) is not None
        assert same_block([x, y]) is None
        assert same_block([]) is None


class TestTreeScheduler:
    def _tree_env(self, env):
        module, func, builder, a, b = env
        i = func.argument("i")
        return module, func, builder, a, b, i

    def test_simple_tree_is_schedulable(self, env):
        module, func, builder, a, b, i = self._tree_env(env)
        l0 = builder.load(builder.gep(b, i))
        l1 = builder.load(builder.gep(b, builder.add(i, builder.i64(1))))
        s0 = builder.store(l0, builder.gep(a, i))
        s1 = builder.store(l1, builder.gep(a, builder.add(i, builder.i64(1))))
        scheduler = TreeScheduler(AliasAnalysis())
        assert scheduler.tree_is_schedulable([l0, l1, s0, s1])

    def test_interposed_conflicting_store_rejected(self, env):
        module, func, builder, a, b, i = self._tree_env(env)
        load_ptr = builder.gep(b, i)
        l0 = builder.load(load_ptr)
        # A store to the same location *between* the load and the seeds:
        builder.store(builder.add(l0, builder.i64(1)), load_ptr)
        l1 = builder.load(builder.gep(b, builder.add(i, builder.i64(1))))
        s0 = builder.store(l0, builder.gep(a, i))
        s1 = builder.store(l1, builder.gep(a, builder.add(i, builder.i64(1))))
        scheduler = TreeScheduler(AliasAnalysis())
        assert not scheduler.tree_is_schedulable([l0, l1, s0, s1])

    def test_external_user_before_insertion_point_rejected(self, env):
        module, func, builder, a, b, i = self._tree_env(env)
        l0 = builder.load(builder.gep(b, i))
        l1 = builder.load(builder.gep(b, builder.add(i, builder.i64(1))))
        # an external scalar user of l0 that sits before the last store
        external = builder.mul(l0, builder.i64(3))
        builder.store(external, builder.gep(b, builder.i64(32)))
        s0 = builder.store(l0, builder.gep(a, i))
        s1 = builder.store(l1, builder.gep(a, builder.add(i, builder.i64(1))))
        scheduler = TreeScheduler(AliasAnalysis())
        assert not scheduler.tree_is_schedulable([l0, l1, s0, s1])

    def test_external_user_after_insertion_point_ok(self, env):
        module, func, builder, a, b, i = self._tree_env(env)
        l0 = builder.load(builder.gep(b, i))
        l1 = builder.load(builder.gep(b, builder.add(i, builder.i64(1))))
        s0 = builder.store(l0, builder.gep(a, i))
        s1 = builder.store(l1, builder.gep(a, builder.add(i, builder.i64(1))))
        # external user *after* the insertion point is fine
        external = builder.mul(l0, builder.i64(3))
        builder.store(external, builder.gep(b, builder.i64(32)))
        scheduler = TreeScheduler(AliasAnalysis())
        assert scheduler.tree_is_schedulable([l0, l1, s0, s1])

    def test_insertion_index_is_last_member(self, env):
        module, func, builder, a, b, i = self._tree_env(env)
        l0 = builder.load(builder.gep(b, i))
        s0 = builder.store(l0, builder.gep(a, i))
        scheduler = TreeScheduler(AliasAnalysis())
        assert (
            scheduler.insertion_index([l0, s0]) == s0.index_in_block()
        )
