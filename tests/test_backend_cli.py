"""CLI surface of the execution backend: ``--backend`` on run/batch,
the backend-verify line, auto fallback reporting, and the smoke tool
CI uses for hash diffing."""

from __future__ import annotations

import json

import pytest

from repro.backend.smoke import run_smoke
from repro.cli import main

KERNEL = """
long A[1024], B[1024], C[1024];
void kernel(long i) {
    A[i + 0] = (B[i + 0] << 1) & (C[i + 0] << 2);
    A[i + 1] = (C[i + 1] << 3) & (B[i + 1] << 4);
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(KERNEL)
    return str(path)


class TestRunBackend:
    def test_compiled_matches_interp_output(self, kernel_file, capsys):
        base = ["run", kernel_file, "--arg", "i=4", "--dump", "A",
                "--dump-count", "8"]
        assert main(base) == 0
        interp_out = capsys.readouterr().out
        assert main(base + ["--backend", "compiled"]) == 0
        compiled_out = capsys.readouterr().out
        interp_dump = [l for l in interp_out.splitlines()
                       if l.startswith("@A")]
        compiled_dump = [l for l in compiled_out.splitlines()
                         if l.startswith("@A")]
        assert interp_dump == compiled_dump
        interp_cycles = [l for l in interp_out.splitlines()
                         if l.startswith("cycles")]
        compiled_cycles = [l for l in compiled_out.splitlines()
                           if l.startswith("cycles")]
        assert interp_cycles == compiled_cycles
        assert "backend: requested compiled, served by compiled" \
            in compiled_out

    def test_backend_verify_line(self, kernel_file, capsys):
        assert main(["run", kernel_file, "--arg", "i=4", "--verify",
                     "--verify-runs", "2",
                     "--backend", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "backend-verify:" in out
        assert "identical" in out or "ok" in out

    def test_trace_falls_back_under_auto(self, kernel_file, capsys):
        assert main(["run", kernel_file, "--arg", "i=4", "--trace",
                     "--backend", "auto"]) == 0
        out = capsys.readouterr().out
        assert "served by interp (fell back: exec-hooks)" in out

    def test_trace_refused_under_compiled(self, kernel_file):
        with pytest.raises(SystemExit, match="exec-hooks"):
            main(["run", kernel_file, "--arg", "i=4", "--trace",
                  "--backend", "compiled"])

    def test_default_is_interp(self, kernel_file, capsys):
        assert main(["run", kernel_file, "--arg", "i=4"]) == 0
        out = capsys.readouterr().out
        assert "backend: requested" not in out


class TestBatchBackend:
    def test_batch_auto_with_verify(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        rc = main(["batch", "catalog", "--configs", "lslp",
                   "--backend", "auto", "--verify-runs", "1",
                   "--report-out", str(report)])
        assert rc == 0
        document = json.loads(report.read_text())
        jobs = document["jobs"]
        assert jobs and all(j["backend"] == "auto" for j in jobs)
        assert all(j["entry_backend"] in ("auto", "interp")
                   for j in jobs)

    def test_batch_backend_changes_cache_keys(self, capsys):
        rc = main(["batch", "catalog", "--configs", "lslp",
                   "--backend", "compiled"])
        assert rc == 0
        capsys.readouterr()
        # same catalog under a different backend: cold again (the
        # backend is a cache-key ingredient), served by the shed round
        rc = main(["batch", "catalog", "--configs", "lslp",
                   "--backend", "interp"])
        assert rc == 0


class TestSmoke:
    def test_auto_hashes_equal_interp(self, tmp_path):
        auto_path = tmp_path / "auto.json"
        interp_path = tmp_path / "interp.json"
        auto = run_smoke("auto", "lslp", 0, str(auto_path))
        interp = run_smoke("interp", "lslp", 0, str(interp_path))
        assert auto["hashes"] == interp["hashes"]
        assert auto["compiled_runs"] > 0
        assert interp["compiled_runs"] == 0
        # the JSON on disk round-trips for the CI diff
        assert json.loads(auto_path.read_text())["hashes"] == \
            auto["hashes"]
