"""Differential tests for the compiled execution backend.

Every catalog kernel, in both vector rendering modes, must reproduce
the interpreter *exactly*: return values, final memory, and the
simulated cycle accounting (cycles / instructions retired / opcode
counts).  Control flow (loops, diamonds), calls (including recursion)
and the error paths (bounds, step limit, call depth, missing
arguments) are exercised with hand-built IR.
"""

from __future__ import annotations

import pytest

from repro.backend import (
    CompiledModule,
    TieredExecutor,
    clear_load_cache,
    cross_check,
    emit_module,
    load_compiled,
)
from repro.costmodel.targets import target_by_name
from repro.interp.interpreter import Interpreter, InterpreterError
from repro.interp.memory import MemoryImage
from repro.ir import F64, Function, GlobalArray, I64, IRBuilder, Module
from repro.kernels.catalog import EVALUATION_KERNELS
from repro.opt.pipelines import compile_function
from repro.slp.vectorizer import VectorizerConfig

TARGET = target_by_name("skylake-like")


def _build(kernel, config):
    module, func = kernel.build()
    compile_function(func, config, TARGET)
    return module, func


# ---------------------------------------------------------------------------
# Catalog sweep: both configs, both rendering modes, exact equality
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["unrolled", "numpy"])
@pytest.mark.parametrize(
    "kernel", EVALUATION_KERNELS, ids=lambda k: k.name
)
def test_catalog_lslp_exact(kernel, mode):
    module, func = _build(kernel, VectorizerConfig.lslp())
    result = cross_check(
        module, func, TARGET, base_args=dict(kernel.default_args),
        runs=2, vector_mode=mode,
    )
    assert result.ok, result.render()
    assert result.compiled_runs == result.runs


@pytest.mark.parametrize(
    "kernel", EVALUATION_KERNELS[:4], ids=lambda k: k.name
)
def test_catalog_scalar_exact(kernel):
    module, func = _build(kernel, VectorizerConfig.o3())
    result = cross_check(
        module, func, TARGET, base_args=dict(kernel.default_args),
        runs=2,
    )
    assert result.ok, result.render()


# ---------------------------------------------------------------------------
# Control flow and calls
# ---------------------------------------------------------------------------


def loop_module():
    """A counted accumulation loop over @A with two phis."""
    m = Module("loops")
    m.add_global(GlobalArray("A", F64, 16))
    f = Function("accum", [("n", I64)])
    f.return_type = F64
    entry = f.add_block("entry")
    loop = f.add_block("loop")
    done = f.add_block("done")
    b = IRBuilder(entry)
    b.br(loop)
    b.set_block(loop)
    i = b.phi(I64, "i")
    acc = b.phi(F64, "acc")
    x = b.load(b.gep(m.globals["A"], i))
    acc2 = b.fadd(acc, x)
    i2 = b.add(i, b.i64(1))
    b.condbr(b.icmp("slt", i2, f.argument("n")), loop, done)
    i.add_incoming(b.i64(0), entry)
    i.add_incoming(i2, loop)
    acc.add_incoming(b.const(F64, 0.0), entry)
    acc.add_incoming(acc2, loop)
    b.set_block(done)
    b.ret(acc2)
    m.add_function(f)
    return m, f


def call_module():
    """main -> double -> double, accounting merged across frames."""
    m = Module("calls")
    m.add_global(GlobalArray("A", I64, 8))
    callee = Function("double", [("x", I64)])
    callee.return_type = I64
    cb = IRBuilder(callee.add_block("entry"))
    cb.ret(cb.add(callee.argument("x"), callee.argument("x")))
    m.add_function(callee)
    caller = Function("main", [("x", I64)])
    caller.return_type = I64
    b = IRBuilder(caller.add_block("entry"))
    r1 = b.call(callee, [caller.argument("x")])
    r2 = b.call(callee, [r1])
    b.ret(b.add(r1, r2))
    m.add_function(caller)
    return m, caller


def recursive_module():
    """Self-recursion counting down from %x."""
    m = Module("rec")
    f = Function("down", [("x", I64)])
    f.return_type = I64
    entry = f.add_block("entry")
    again = f.add_block("again")
    out = f.add_block("out")
    b = IRBuilder(entry)
    b.condbr(b.icmp("sgt", f.argument("x"), b.i64(0)), again, out)
    b.set_block(again)
    r = b.call(f, [b.sub(f.argument("x"), b.i64(1))])
    b.ret(b.add(r, b.i64(1)))
    b.set_block(out)
    b.ret(b.i64(0))
    m.add_function(f)
    return m, f


def test_loop_exact():
    m, f = loop_module()
    result = cross_check(m, f, TARGET, base_args={"n": 16}, runs=3)
    assert result.ok, result.render()


def test_calls_merge_accounting():
    m, f = call_module()
    result = cross_check(m, f, TARGET, base_args={"x": 7}, runs=3)
    assert result.ok, result.render()


def test_recursion_within_depth():
    m, f = recursive_module()
    result = cross_check(m, f, TARGET, base_args={"x": 20}, runs=2)
    assert result.ok, result.render()


def test_recursion_depth_limit_matches():
    m, f = recursive_module()
    result = cross_check(m, f, TARGET, base_args={"x": 100}, runs=1)
    assert result.ok, result.render()


# ---------------------------------------------------------------------------
# Error paths: same exception class, same message
# ---------------------------------------------------------------------------


def _both_raise(module, func, args, step_limit=1_000_000):
    mem_ref = MemoryImage(module)
    mem_ref.randomize(3)
    mem_cmp = mem_ref.clone()
    with pytest.raises(InterpreterError) as interp_err:
        Interpreter(mem_ref, TARGET).run(
            func, args, step_limit=step_limit
        )
    executor = TieredExecutor(module, mem_cmp, TARGET,
                              backend="compiled")
    with pytest.raises(InterpreterError) as backend_err:
        executor.run(func.name, args, step_limit=step_limit)
    return str(interp_err.value), str(backend_err.value)


def test_step_limit_message_matches():
    m, f = loop_module()
    a, b = _both_raise(m, f, {"n": 16}, step_limit=10)
    assert a == b
    assert "step limit 10 exceeded" in a


def test_out_of_bounds_matches():
    m, f = loop_module()
    a, b = _both_raise(m, f, {"n": 25})  # @A only holds 16
    # Identical up to the context suffix: the interpreter cites the
    # faulting Instruction, the backend says "in generated code".
    assert a.split(" in ")[0] == b.split(" in ")[0]
    assert "out of bounds" in a and "out of bounds" in b


def test_missing_argument_matches():
    m, f = loop_module()
    a, b = _both_raise(m, f, {})
    assert a == b == "missing argument %n for @accum"


# ---------------------------------------------------------------------------
# Runtime plumbing
# ---------------------------------------------------------------------------


def test_load_cache_memoizes_by_content():
    m, f = loop_module()
    emitted = emit_module(m, TARGET)
    clear_load_cache()
    first = load_compiled(emitted.source)
    second = load_compiled(emitted.source)
    assert first.namespace is second.namespace
    assert first.sha256 == second.sha256


def test_version_mismatch_rejected():
    m, f = loop_module()
    emitted = emit_module(m, TARGET)
    source = emitted.source.replace("'version': 1", "'version': 999")
    clear_load_cache()
    with pytest.raises(ValueError, match="version"):
        CompiledModule(source)


def test_bound_function_survives_in_place_mutation():
    """Bound buffers are captured by reference; randomize/set_array
    mutate in place, so results track the live memory."""
    m, f = loop_module()
    memory = MemoryImage(m)
    executor = TieredExecutor(m, memory, TARGET, backend="compiled")
    memory.set_array("A", [1.0] * 16)
    first = executor.run(f.name, {"n": 4}).result
    assert first.return_value == 4.0
    memory.set_array("A", [2.0] * 16)
    second = executor.run(f.name, {"n": 4}).result
    assert second.return_value == 8.0
    assert first.cycles == second.cycles


def test_interp_backend_is_plain_interpreter():
    m, f = loop_module()
    memory = MemoryImage(m)
    memory.randomize(0)
    executor = TieredExecutor(m, memory, TARGET, backend="interp")
    run = executor.run(f.name, {"n": 8})
    assert run.tier == "interp"
    assert not run.fallback
    assert executor.compiled is None
