"""Fallback semantics: every construct the emitter deliberately
declines must (a) be recorded with its tag in
``EmittedModule.unsupported``, (b) raise :class:`UnsupportedConstruct`
under ``backend=compiled``, and (c) — where the function is otherwise
runnable — fall back to the interpreter under ``backend=auto`` with the
construct surfaced on the :class:`TierRun`.
"""

from __future__ import annotations

import pytest

from repro.backend import (
    TieredExecutor,
    UnsupportedConstruct,
    emit_module,
)
from repro.backend import tiers as tiers_mod
from repro.costmodel.targets import target_by_name
from repro.interp.interpreter import Interpreter, InterpreterError
from repro.interp.memory import MemoryImage
from repro.ir import (
    F64,
    Function,
    GlobalArray,
    I1,
    I64,
    IRBuilder,
    Module,
    PointerType,
)

TARGET = target_by_name("skylake-like")


def _unsupported(module, func_name, mode="auto"):
    emitted = emit_module(module, TARGET, mode)
    assert func_name in emitted.unsupported, (
        f"@{func_name} unexpectedly supported:\n{emitted.source}"
    )
    return emitted.unsupported[func_name]


def _auto_matches_interp(module, func_name, args, construct,
                         vector_mode="auto"):
    """backend=auto must fall back AND agree with the interpreter."""
    mem_ref = MemoryImage(module)
    mem_ref.randomize(11)
    mem_cmp = mem_ref.clone()
    expected = Interpreter(mem_ref, TARGET).run(
        module.get_function(func_name), dict(args)
    )
    executor = TieredExecutor(module, mem_cmp, TARGET, backend="auto",
                              vector_mode=vector_mode)
    run = executor.run(func_name, dict(args))
    assert run.fallback and run.tier == "interp"
    assert run.fallback_construct == construct
    assert run.result.return_value == expected.return_value
    assert run.result.cycles == expected.cycles
    assert mem_cmp.same_contents(mem_ref)


def _compiled_raises(module, func_name, construct, args=None,
                     vector_mode="auto"):
    memory = MemoryImage(module)
    memory.randomize(11)
    executor = TieredExecutor(module, memory, TARGET,
                              backend="compiled",
                              vector_mode=vector_mode)
    with pytest.raises(UnsupportedConstruct) as err:
        executor.run(func_name, dict(args or {}))
    assert err.value.construct == construct


# ---------------------------------------------------------------------------
# Construct triggers
# ---------------------------------------------------------------------------


def pointer_arg_module():
    m = Module("ptrarg")
    f = Function("touch", [("p", PointerType(F64)), ("i", I64)])
    f.return_type = F64
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.load(b.gep(f.argument("p"), f.argument("i"))))
    m.add_function(f)
    return m


def pointer_flow_module():
    """A select between two GEPs: a pointer produced by a non-GEP."""
    m = Module("ptrflow")
    a = m.add_global(GlobalArray("A", F64, 16))
    f = Function("pick", [("i", I64)])
    f.return_type = F64
    b = IRBuilder(f.add_block("entry"))
    lo = b.gep(a, b.i64(0))
    hi = b.gep(a, f.argument("i"))
    cond = b.icmp("sgt", f.argument("i"), b.i64(8))
    b.ret(b.load(b.select(cond, hi, lo)))
    m.add_function(f)
    return m


def vector_sdiv_module():
    m = Module("vsdiv")
    a = m.add_global(GlobalArray("A", I64, 16))
    f = Function("vdiv", [("i", I64)])
    b = IRBuilder(f.add_block("entry"))
    ptr = b.gep(a, f.argument("i"))
    vec = b.vload(ptr, 4)
    two = b.splat(b.i64(2), 4)
    b.store(b.binop("sdiv", vec, two), ptr)
    b.ret()
    m.add_function(f)
    return m


def dynamic_shift_module():
    m = Module("vshift")
    a = m.add_global(GlobalArray("A", I64, 16))
    f = Function("vshl", [("i", I64), ("k", I64)])
    b = IRBuilder(f.add_block("entry"))
    ptr = b.gep(a, f.argument("i"))
    vec = b.vload(ptr, 4)
    amount = b.splat(f.argument("k"), 4)
    b.store(b.shl(vec, amount), ptr)
    b.ret()
    m.add_function(f)
    return m


def i1_vector_module():
    """Mask *arithmetic* (an ``and`` of two i1 vectors) has no numpy
    rendering; mask plumbing (cmp/splat/insert/shuffle/select) does."""
    m = Module("boolvec")
    a = m.add_global(GlobalArray("A", I64, 16))
    f = Function("mask", [("x", I64)])
    f.return_type = I64
    b = IRBuilder(f.add_block("entry"))
    vec = b.vload(b.gep(a, b.i64(0)), 4)
    zeros = b.splat(b.i64(0), 4)
    low = b.icmp("sgt", vec, zeros)
    high = b.icmp("slt", vec, b.splat(b.i64(7), 4))
    both = b.and_(low, high)
    b.ret(b.extractelement(both, 2))
    m.add_function(f)
    return m


def splat_mask_module():
    """A splat of an i1 condition is mask plumbing — now rendered as a
    numpy bool vector (the uniform select mask if-conversion emits)."""
    m = Module("splatmask")
    f = Function("mask", [("x", I64)])
    f.return_type = I64
    b = IRBuilder(f.add_block("entry"))
    bit = b.icmp("sgt", f.argument("x"), b.i64(0))
    vec = b.splat(bit, 4)
    b.ret(b.extractelement(vec, 2))
    m.add_function(f)
    return m


def i1_memory_module():
    """Storing a vector-compare result to an i1 array."""
    m = Module("boolmem")
    a = m.add_global(GlobalArray("A", I64, 16))
    masks = m.add_global(GlobalArray("M", I1, 16))
    f = Function("cmpstore", [("i", I64)])
    b = IRBuilder(f.add_block("entry"))
    ptr = b.gep(a, f.argument("i"))
    vec = b.vload(ptr, 4)
    mask = b.icmp("sgt", vec, b.splat(b.i64(0), 4))
    b.store(mask, b.gep(masks, f.argument("i")))
    b.ret()
    m.add_function(f)
    return m


def caller_of_unsupported_module():
    """Caller is clean; its callee does a vector sdiv (numpy mode)."""
    m = vector_sdiv_module()
    callee = m.get_function("vdiv")
    caller = Function("outer", [("i", I64)])
    b = IRBuilder(caller.add_block("entry"))
    b.call(callee, [caller.argument("i")])
    b.ret()
    m.add_function(caller)
    return m


def simple_module():
    m = Module("simple")
    f = Function("ident", [("x", I64)])
    f.return_type = I64
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.add(f.argument("x"), b.i64(0)))
    m.add_function(f)
    return m


# ---------------------------------------------------------------------------
# Emitter metadata + compiled raises
# ---------------------------------------------------------------------------


def test_pointer_argument():
    m = pointer_arg_module()
    reason = _unsupported(m, "touch")
    assert reason["construct"] == "pointer-argument"
    assert "%p" in reason["detail"]
    _compiled_raises(m, "touch", "pointer-argument",
                     args={"p": None, "i": 0})


def test_pointer_flow():
    m = pointer_flow_module()
    reason = _unsupported(m, "pick")
    assert reason["construct"] == "pointer-flow"
    _compiled_raises(m, "pick", "pointer-flow", args={"i": 3})
    _auto_matches_interp(m, "pick", {"i": 12}, "pointer-flow")


def test_vector_int_division_numpy_only():
    m = vector_sdiv_module()
    reason = _unsupported(m, "vdiv", mode="numpy")
    assert reason["construct"] == "vector-int-division"
    _compiled_raises(m, "vdiv", "vector-int-division", args={"i": 0},
                     vector_mode="numpy")
    _auto_matches_interp(m, "vdiv", {"i": 4}, "vector-int-division",
                         vector_mode="numpy")
    # the unrolled rendering handles it exactly
    emitted = emit_module(m, TARGET, "unrolled")
    assert "vdiv" not in emitted.unsupported


def test_vector_shift_dynamic_numpy_only():
    m = dynamic_shift_module()
    reason = _unsupported(m, "vshl", mode="numpy")
    assert reason["construct"] == "vector-shift-dynamic"
    _compiled_raises(m, "vshl", "vector-shift-dynamic",
                     args={"i": 0, "k": 3}, vector_mode="numpy")
    _auto_matches_interp(m, "vshl", {"i": 4, "k": 3},
                         "vector-shift-dynamic", vector_mode="numpy")
    emitted = emit_module(m, TARGET, "unrolled")
    assert "vshl" not in emitted.unsupported


def test_i1_vector_numpy_only():
    m = i1_vector_module()
    reason = _unsupported(m, "mask", mode="numpy")
    assert reason["construct"] == "i1-vector"
    _compiled_raises(m, "mask", "i1-vector", args={"x": 5},
                     vector_mode="numpy")
    _auto_matches_interp(m, "mask", {"x": 5}, "i1-vector",
                         vector_mode="numpy")
    # the unrolled rendering handles mask arithmetic lane-wise, exactly
    emitted = emit_module(m, TARGET, "unrolled")
    assert "mask" not in emitted.unsupported


def test_splat_mask_supported_in_numpy():
    """Mask *plumbing* is not declined: a splat of an i1 condition (the
    uniform select mask if-conversion emits) renders as a numpy bool
    vector and agrees with the interpreter bit for bit."""
    m = splat_mask_module()
    emitted = emit_module(m, TARGET, "numpy")
    assert "mask" not in emitted.unsupported, emitted.unsupported
    for x in (-3, 0, 5):
        mem_ref = MemoryImage(m)
        expected = Interpreter(mem_ref, TARGET).run(
            m.get_function("mask"), {"x": x}
        )
        executor = TieredExecutor(m, MemoryImage(m), TARGET,
                                  backend="compiled",
                                  vector_mode="numpy")
        run = executor.run("mask", {"x": x})
        assert run.tier == "compiled" and not run.fallback
        assert run.result.return_value == expected.return_value
        assert run.result.cycles == expected.cycles


def test_i1_memory_numpy_only():
    m = i1_memory_module()
    reason = _unsupported(m, "cmpstore", mode="numpy")
    assert reason["construct"] == "i1-memory"
    _compiled_raises(m, "cmpstore", "i1-memory", args={"i": 0},
                     vector_mode="numpy")
    _auto_matches_interp(m, "cmpstore", {"i": 4}, "i1-memory",
                         vector_mode="numpy")
    # the unrolled rendering stores the lanes element-wise, exactly
    emitted = emit_module(m, TARGET, "unrolled")
    assert "cmpstore" not in emitted.unsupported


def test_callee_unsupported_propagates():
    m = caller_of_unsupported_module()
    reason = _unsupported(m, "outer", mode="numpy")
    assert reason["construct"] == "callee-unsupported"
    assert "vector-int-division" in reason["detail"]
    _auto_matches_interp(m, "outer", {"i": 4}, "callee-unsupported",
                         vector_mode="numpy")


def test_unknown_function():
    m = simple_module()
    memory = MemoryImage(m)
    executor = TieredExecutor(m, memory, TARGET, backend="compiled")
    with pytest.raises(UnsupportedConstruct) as err:
        executor.run("nope", {})
    assert err.value.construct == "unknown-function"
    with pytest.raises(InterpreterError, match="no generated code"):
        executor.compiled.run("nope", memory)


def test_exec_hooks():
    m = simple_module()
    memory = MemoryImage(m)
    retired = []
    executor = TieredExecutor(m, memory, TARGET, backend="auto")
    run = executor.run("ident", {"x": 1},
                       on_retire=lambda inst, value:
                       retired.append(inst))
    assert run.fallback and run.fallback_construct == "exec-hooks"
    assert retired  # the hook really fired on the interpreter
    strict = TieredExecutor(m, memory, TARGET, backend="compiled")
    with pytest.raises(UnsupportedConstruct) as err:
        strict.run("ident", {"x": 1}, profile=lambda *a: None)
    assert err.value.construct == "exec-hooks"


def test_emit_error(monkeypatch):
    m = simple_module()

    def boom(*args, **kwargs):
        raise RuntimeError("synthetic emitter crash")

    monkeypatch.setattr(tiers_mod, "emit_module", boom)
    memory = MemoryImage(m)
    executor = TieredExecutor(m, memory, TARGET, backend="auto")
    run = executor.run("ident", {"x": 41})
    assert run.fallback and run.fallback_construct == "emit-error"
    assert "synthetic emitter crash" in run.fallback_detail
    assert run.result.return_value == 41
    strict = TieredExecutor(m, memory, TARGET, backend="compiled")
    with pytest.raises(RuntimeError, match="synthetic emitter crash"):
        strict.run("ident", {"x": 1})


def test_supported_function_unaffected_by_unsupported_sibling():
    """One bad function must not poison the rest of the module."""
    m = pointer_flow_module()
    f = Function("ident", [("x", I64)])
    f.return_type = I64
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.add(f.argument("x"), b.i64(0)))
    m.add_function(f)
    memory = MemoryImage(m)
    memory.randomize(0)
    executor = TieredExecutor(m, memory, TARGET, backend="compiled")
    run = executor.run("ident", {"x": 9})
    assert run.tier == "compiled" and not run.fallback
    assert run.result.return_value == 9
