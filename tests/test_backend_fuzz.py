"""Property-based differential fuzzing of the compiled backend.

Reuses the kernel generator from :mod:`tests.test_property_differential`
(random expression templates with per-lane commutative swaps — the
paper's workload shape), vectorizes with LSLP, and requires the
generated NumPy code to match the interpreter *exactly*: return value,
final memory, cycles, retired count, and per-opcode tallies, in both
vector rendering modes.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.backend import cross_check
from repro.costmodel.targets import target_by_name
from repro.opt import compile_function
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel
from tests.test_property_differential import expressions, kernels, render

TARGET = target_by_name("skylake-like")
ARRAYS = ["B", "C", "D", "E"]


@settings(max_examples=40, deadline=None)
@given(source=kernels(), seed=st.integers(min_value=0, max_value=10**6))
def test_compiled_matches_interpreter_vectorized(source, seed):
    module, func = build_kernel(source)
    compile_function(func, VectorizerConfig.lslp(), TARGET)
    for mode in ("unrolled", "numpy"):
        result = cross_check(
            module, func, TARGET,
            base_args={"i": 4, "k": seed % 97 - 48},
            runs=2, base_seed=seed, vector_mode=mode,
        )
        assert result.ok, (
            f"{mode} diverged: {result.render()}\n{source}"
        )


def test_unsigned_vector_lshr_regression():
    """Found by the fuzz: numpy-mode lshr casts the operand to uint64,
    but a vector-constant shift amount rendered as int64 has no safe
    common type with it — numpy refuses uint64 >> int64."""
    source = (
        "unsigned long A[64], B[64], C[64], D[64], E[64];\n"
        "void kernel(long i, long k) {\n"
        "    A[i + 0] = (B[i + 0] >> 1);\n"
        "    A[i + 1] = (B[i + 1] >> 1);\n"
        "}\n"
    )
    module, func = build_kernel(source)
    compile_function(func, VectorizerConfig.lslp(), TARGET)
    for mode in ("unrolled", "numpy"):
        result = cross_check(module, func, TARGET,
                             base_args={"i": 4, "k": 0}, runs=2,
                             vector_mode=mode)
        assert result.ok, f"{mode}: {result.render()}"


# ---------------------------------------------------------------------------
# Select-bearing and branchy kernels (the if-conversion surface)
# ---------------------------------------------------------------------------


def _decls() -> str:
    return "unsigned long A[64], " + ", ".join(
        f"{name}[64]" for name in ARRAYS
    ) + ";"


@st.composite
def select_kernels(draw):
    """Per-lane ternaries: every row lowers to a scalar select, so the
    vectorized trees carry vector selects through the backend."""
    lanes = draw(st.sampled_from([2, 4]))
    predicate = draw(st.sampled_from(["<", "<=", ">", "==", "!="]))
    cond_template = draw(expressions(max_depth=2))
    value_template = draw(expressions(max_depth=2))
    rows = []
    for lane in range(lanes):
        swaps = draw(st.lists(st.booleans(), min_size=0, max_size=8))
        cond = render(cond_template, lane, swaps, [0])
        on_true = render(value_template, lane, swaps, [0])
        rows.append(
            f"    A[i + {lane}] = ({cond} {predicate} 3) "
            f"? {on_true} : B[i + {lane}];"
        )
    return (
        f"{_decls()}\n"
        "void kernel(long i, long k) {\n"
        + "\n".join(rows)
        + "\n}\n"
    )


@st.composite
def branchy_kernels(draw):
    """Per-lane if/else regions for the if-conversion pass.

    Diamonds store to the same address on both paths (must-alias merge,
    always convertible once the operands are provable); hammocks guard
    an in-place update whose dereferenceability proof comes from the
    condition's own read of the target.  Symbolic-index lanes exercise
    the decline paths — the property is the same either way: compiling
    with ``ifconvert=on`` never miscompiles.
    """
    lanes = draw(st.sampled_from([2, 4]))
    hammock = draw(st.booleans())
    predicate = draw(st.sampled_from(["<", ">", "=="]))
    value_template = draw(expressions(max_depth=2))
    rows = []
    for lane in range(lanes):
        swaps = draw(st.lists(st.booleans(), min_size=0, max_size=8))
        value = render(value_template, lane, swaps, [0])
        if hammock:
            rows.append(
                f"    if (A[i + {lane}] {predicate} B[i + {lane}]) "
                f"{{ A[i + {lane}] = {value}; }}"
            )
        else:
            other = draw(st.sampled_from(ARRAYS))
            rows.append(
                f"    if (B[i + {lane}] {predicate} 7) "
                f"{{ A[i + {lane}] = {value}; }} "
                f"else {{ A[i + {lane}] = {other}[i + {lane}]; }}"
            )
    return (
        f"{_decls()}\n"
        "void kernel(long i, long k) {\n"
        + "\n".join(rows)
        + "\n}\n"
    )


@settings(max_examples=30, deadline=None)
@given(source=select_kernels(),
       seed=st.integers(min_value=0, max_value=10**6))
def test_compiled_matches_interpreter_selects(source, seed):
    module, func = build_kernel(source)
    compile_function(func, VectorizerConfig.lslp(), TARGET)
    for mode in ("unrolled", "numpy"):
        result = cross_check(
            module, func, TARGET,
            base_args={"i": 4, "k": seed % 97 - 48},
            runs=2, base_seed=seed, vector_mode=mode,
        )
        assert result.ok, f"{mode} diverged: {result.render()}\n{source}"


@settings(max_examples=30, deadline=None)
@given(source=branchy_kernels(),
       seed=st.integers(min_value=0, max_value=10**6))
def test_compiled_matches_interpreter_ifconverted(source, seed):
    module, func = build_kernel(source)
    config = replace(VectorizerConfig.lslp(), ifconvert="on")
    compile_function(func, config, TARGET)
    for mode in ("unrolled", "numpy"):
        result = cross_check(
            module, func, TARGET,
            base_args={"i": 4, "k": seed % 97 - 48},
            runs=2, base_seed=seed, vector_mode=mode,
        )
        assert result.ok, f"{mode} diverged: {result.render()}\n{source}"


def test_constant_select_mask_regression():
    """Found by the select fuzz: constfold turns a lane-invariant
    ternary condition into a ``<N x i1>`` vector constant, which the
    numpy emitter refused to render."""
    source = (
        "unsigned long A[64], B[64], C[64], D[64], E[64];\n"
        "void kernel(long i, long k) {\n"
        "    A[i + 0] = (0 < 3) ? B[i + 0] : C[i + 0];\n"
        "    A[i + 1] = (0 < 3) ? B[i + 1] : C[i + 1];\n"
        "}\n"
    )
    module, func = build_kernel(source)
    compile_function(func, VectorizerConfig.lslp(), TARGET)
    for mode in ("unrolled", "numpy"):
        result = cross_check(module, func, TARGET,
                             base_args={"i": 4, "k": 0}, runs=2,
                             vector_mode=mode)
        assert result.ok, f"{mode}: {result.render()}"


def test_splat_select_mask_regression():
    """Found by the select fuzz: a uniform scalar condition (``k < 3``)
    is splat to ``<N x i1>`` for the packed selects; the numpy emitter
    needs to render it as a bool vector like a cmp result."""
    source = (
        "unsigned long A[64], B[64], C[64], D[64], E[64];\n"
        "void kernel(long i, long k) {\n"
        "    A[i + 0] = (k < 3) ? B[i + 0] : C[i + 0];\n"
        "    A[i + 1] = (k < 3) ? B[i + 1] : C[i + 1];\n"
        "}\n"
    )
    module, func = build_kernel(source)
    compile_function(func, VectorizerConfig.lslp(), TARGET)
    for mode in ("unrolled", "numpy"):
        result = cross_check(module, func, TARGET,
                             base_args={"i": 4, "k": 0}, runs=2,
                             vector_mode=mode)
        assert result.ok, f"{mode}: {result.render()}"


# ---------------------------------------------------------------------------
# Counted loops (the unroll-and-SLP surface)
# ---------------------------------------------------------------------------


@st.composite
def loop_reduction_kernels(draw):
    """Accumulator loops with random trips, steps, and reduction ops:
    under ``loop_vectorize=True`` these partially unroll, pack across
    the copies, and fold through a horizontal reduction — all of which
    the compiled tier must replay bit-for-bit, epilogue included."""
    bound = draw(st.integers(min_value=0, max_value=24))
    step = draw(st.integers(min_value=1, max_value=2))
    use_symbolic_bound = draw(st.booleans())
    bound_text = "n" if use_symbolic_bound else str(bound)
    op = draw(st.sampled_from(["+", "*", "&", "|", "^"]))
    array = draw(st.sampled_from(ARRAYS))
    other = draw(st.sampled_from(ARRAYS))
    multiply = draw(st.booleans())
    update = (f"s {op} {array}[j] * {other}[j]" if multiply
              else f"s {op} {array}[j]")
    with_store = draw(st.booleans())
    store = f"        A[j] = {array}[j] + {other}[j];\n" if with_store else ""
    source = (
        f"{_decls()}\n"
        "unsigned long kernel(long n) {\n"
        "    unsigned long s = 1;\n"
        f"    for (long j = 0; j < {bound_text}; j = j + {step}) {{\n"
        f"{store}"
        f"        s = {update};\n"
        "    }\n"
        "    return s;\n"
        "}\n"
    )
    return source, bound


@settings(max_examples=30, deadline=None)
@given(data=loop_reduction_kernels(),
       seed=st.integers(min_value=0, max_value=10**6))
def test_compiled_matches_interpreter_loop_vectorized(data, seed):
    source, bound = data
    module, func = build_kernel(source)
    config = replace(VectorizerConfig.lslp(), loop_vectorize=True)
    compile_function(func, config, TARGET)
    for mode in ("unrolled", "numpy"):
        result = cross_check(
            module, func, TARGET,
            base_args={"n": bound},
            runs=2, base_seed=seed, vector_mode=mode,
        )
        assert result.ok, f"{mode} diverged: {result.render()}\n{source}"


@settings(max_examples=25, deadline=None)
@given(source=kernels(), seed=st.integers(min_value=0, max_value=10**6))
def test_compiled_matches_interpreter_scalar(source, seed):
    module, func = build_kernel(source)
    result = cross_check(
        module, func, TARGET,
        base_args={"i": 4, "k": seed % 97 - 48},
        runs=2, base_seed=seed,
    )
    assert result.ok, f"scalar diverged: {result.render()}\n{source}"
