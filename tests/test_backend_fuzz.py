"""Property-based differential fuzzing of the compiled backend.

Reuses the kernel generator from :mod:`tests.test_property_differential`
(random expression templates with per-lane commutative swaps — the
paper's workload shape), vectorizes with LSLP, and requires the
generated NumPy code to match the interpreter *exactly*: return value,
final memory, cycles, retired count, and per-opcode tallies, in both
vector rendering modes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.backend import cross_check
from repro.costmodel.targets import target_by_name
from repro.opt import compile_function
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel
from tests.test_property_differential import kernels

TARGET = target_by_name("skylake-like")


@settings(max_examples=40, deadline=None)
@given(source=kernels(), seed=st.integers(min_value=0, max_value=10**6))
def test_compiled_matches_interpreter_vectorized(source, seed):
    module, func = build_kernel(source)
    compile_function(func, VectorizerConfig.lslp(), TARGET)
    for mode in ("unrolled", "numpy"):
        result = cross_check(
            module, func, TARGET,
            base_args={"i": 4, "k": seed % 97 - 48},
            runs=2, base_seed=seed, vector_mode=mode,
        )
        assert result.ok, (
            f"{mode} diverged: {result.render()}\n{source}"
        )


def test_unsigned_vector_lshr_regression():
    """Found by the fuzz: numpy-mode lshr casts the operand to uint64,
    but a vector-constant shift amount rendered as int64 has no safe
    common type with it — numpy refuses uint64 >> int64."""
    source = (
        "unsigned long A[64], B[64], C[64], D[64], E[64];\n"
        "void kernel(long i, long k) {\n"
        "    A[i + 0] = (B[i + 0] >> 1);\n"
        "    A[i + 1] = (B[i + 1] >> 1);\n"
        "}\n"
    )
    module, func = build_kernel(source)
    compile_function(func, VectorizerConfig.lslp(), TARGET)
    for mode in ("unrolled", "numpy"):
        result = cross_check(module, func, TARGET,
                             base_args={"i": 4, "k": 0}, runs=2,
                             vector_mode=mode)
        assert result.ok, f"{mode}: {result.render()}"


@settings(max_examples=25, deadline=None)
@given(source=kernels(), seed=st.integers(min_value=0, max_value=10**6))
def test_compiled_matches_interpreter_scalar(source, seed):
    module, func = build_kernel(source)
    result = cross_check(
        module, func, TARGET,
        base_args={"i": 4, "k": seed % 97 - 48},
        runs=2, base_seed=seed,
    )
    assert result.ok, f"scalar diverged: {result.render()}\n{source}"
