"""Backend integration with the compilation service.

Covers the CACHE_SCHEMA bump (old entries are clean misses, never
corruption), the backend ingredient in the cache key, generated-source
storage and warm serving, the two permanent backend failure kinds, and
the degradation ladder's shed-to-interpreter round.
"""

from __future__ import annotations

import json

import repro.backend.validate as validate_mod
from repro.costmodel.targets import skylake_like
from repro.ir import F64, Function, I64, IRBuilder, Module, PointerType
from repro.kernels.catalog import ALL_KERNELS
from repro.service import (
    CompilationService,
    CompileCache,
    DiskCache,
    execute_job,
    job_for_kernel,
    job_for_module,
    MemoryCache,
)
from repro.service.cache import CACHE_SCHEMA, StaleSchemaError
from repro.service.resilience import (
    BACKEND_SHED_KINDS,
    ERROR_BACKEND_MISMATCH,
    ERROR_BACKEND_UNSUPPORTED,
    is_retryable,
)
from repro.slp.vectorizer import VectorizerConfig

KERNEL = next(iter(ALL_KERNELS.values()))


def _job(**overrides):
    return job_for_kernel(KERNEL, VectorizerConfig.lslp(),
                          skylake_like(), **overrides)


def pointer_arg_module():
    m = Module("ptrarg")
    f = Function("touch", [("p", PointerType(F64)), ("i", I64)])
    f.return_type = F64
    b = IRBuilder(f.add_block("entry"))
    b.ret(b.load(b.gep(f.argument("p"), f.argument("i"))))
    m.add_function(f)
    return m


def _pointer_job(**overrides):
    overrides.setdefault("verify_runs", 0)
    return job_for_module("ptrarg", pointer_arg_module(),
                          VectorizerConfig.lslp(), skylake_like(),
                          **overrides)


# ---------------------------------------------------------------------------
# Schema migration (satellite 1)
# ---------------------------------------------------------------------------


def test_schema_is_bumped():
    assert CACHE_SCHEMA >= 2


def test_old_schema_entry_is_clean_miss(tmp_path):
    """A healthy entry written by an older release must read as a
    miss — counted as stale schema, not corruption — and be evicted
    so the write-through can replace it."""
    disk = DiskCache(tmp_path)
    outcome = execute_job(_job())
    assert outcome.error == ""
    entry = outcome.entry
    disk.put(entry.key, entry)
    path = disk._path(entry.key)
    data = json.loads(path.read_text())
    data["schema"] = CACHE_SCHEMA - 1
    path.write_text(json.dumps(data))

    assert disk.get(entry.key) is None
    assert disk.stale_schema == 1
    assert disk.corrupt == 0
    assert disk.misses == 1
    assert not path.exists()

    # a recompile write-through restores service
    disk.put(entry.key, entry)
    warm = disk.get(entry.key)
    assert warm is not None and warm.schema == CACHE_SCHEMA


def test_from_json_raises_typed_error():
    outcome = execute_job(_job())
    data = json.loads(outcome.entry.to_json())
    data["schema"] = 1
    try:
        from repro.service.cache import CacheEntry
        CacheEntry.from_json(json.dumps(data))
    except StaleSchemaError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected StaleSchemaError")


# ---------------------------------------------------------------------------
# Cache key + stored artifact
# ---------------------------------------------------------------------------


def test_backend_is_a_cache_key_ingredient():
    keys = {_job(backend=b).cache_key()
            for b in ("interp", "compiled", "auto")}
    assert len(keys) == 3


def test_compiled_job_stores_generated_source():
    outcome = execute_job(_job(backend="compiled", verify_runs=2))
    assert outcome.error == ""
    entry = outcome.entry
    assert entry.backend == "compiled"
    assert "def " in entry.generated_source
    assert entry.schema == CACHE_SCHEMA


def test_interp_job_stores_no_source():
    outcome = execute_job(_job(backend="interp"))
    assert outcome.error == ""
    assert outcome.entry.backend == "interp"
    assert outcome.entry.generated_source == ""


def test_warm_disk_hit_serves_generated_source(tmp_path):
    job = _job(backend="compiled", verify_runs=1)
    cold_cache = CompileCache(memory=MemoryCache(),
                              disk=DiskCache(tmp_path))
    svc = CompilationService(cache=cold_cache)
    cold = svc.compile_job(job)
    assert cold.error == "" and cold.cache_tier == ""
    source = cold.entry.generated_source
    assert source

    # a fresh service over the same directory: pure disk hit, byte-equal
    warm_svc = CompilationService(cache=CompileCache(
        memory=MemoryCache(), disk=DiskCache(tmp_path)))
    warm = warm_svc.compile_job(job)
    assert warm.cache_tier == "disk"
    assert warm.entry.generated_source == source
    assert warm_svc.stats.vectorizer_invocations == 0


# ---------------------------------------------------------------------------
# Permanent failure kinds (satellite 2)
# ---------------------------------------------------------------------------


def test_backend_kinds_are_permanent():
    assert not is_retryable(ERROR_BACKEND_MISMATCH)
    assert not is_retryable(ERROR_BACKEND_UNSUPPORTED)
    assert BACKEND_SHED_KINDS == {ERROR_BACKEND_MISMATCH,
                                  ERROR_BACKEND_UNSUPPORTED}


def test_unsupported_construct_fails_compiled_jobs():
    outcome = execute_job(_pointer_job(backend="compiled"))
    assert outcome.entry is None
    assert outcome.error_info is not None
    assert outcome.error_info.kind == ERROR_BACKEND_UNSUPPORTED
    assert "pointer-argument" in outcome.error


def test_auto_jobs_fall_back_with_remark():
    outcome = execute_job(_pointer_job(backend="auto"))
    assert outcome.error == ""
    entry = outcome.entry
    # auto keeps the generated source (other functions in the module
    # may still be servable); the runtime falls back per function
    assert entry.backend == "auto"
    backend_remarks = [r for r in entry.remarks
                       if r.get("category") == "backend"]
    assert backend_remarks
    assert "pointer-argument" in backend_remarks[0]["message"]


def test_divergence_fails_compiled_jobs(monkeypatch):
    """A compiled-vs-interpreter mismatch is the one bug class this
    subsystem exists to catch: it must be a permanent, named failure."""

    class FakeDivergence:
        ok = False
        runs = 1
        compiled_runs = 1

        def render(self):
            return "run 0: return value diverged (injected)"

    monkeypatch.setattr(validate_mod, "cross_check",
                        lambda *a, **k: FakeDivergence())
    outcome = execute_job(_job(backend="compiled", verify_runs=1))
    assert outcome.entry is None
    assert outcome.error_info is not None
    assert outcome.error_info.kind == ERROR_BACKEND_MISMATCH
    assert "diverged" in outcome.error


# ---------------------------------------------------------------------------
# Degradation ladder: shed to the interpreter tier (satellite 2)
# ---------------------------------------------------------------------------


def test_ladder_sheds_compiled_failure_to_interp():
    svc = CompilationService(cache=CompileCache(memory=MemoryCache()))
    res = svc.compile_job(_pointer_job(backend="compiled"))
    assert res.error == ""
    # the submitted job is reported unchanged; the artifact records
    # the tier that actually produced it
    assert res.job.backend == "compiled"
    assert res.entry.backend == "interp"
    shed = [r for r in res.entry.remarks
            if r.get("category") == "backend"
            and "shed to the interpreter" in r.get("message", "")]
    assert shed
    assert svc.stats.backend_shed == 1
    assert svc.stats.refused == 0


def test_shed_artifact_is_cached_warm():
    """The interp-tier artifact produced by the shed round is the true
    artifact for the rewritten key: a resubmit must not recompile."""
    svc = CompilationService(cache=CompileCache(memory=MemoryCache()))
    svc.compile_job(_pointer_job(backend="compiled"))
    invocations = svc.stats.vectorizer_invocations
    again = svc.compile_job(_pointer_job(backend="interp"))
    assert again.cache_tier == "memory"
    assert svc.stats.vectorizer_invocations == invocations
    shed = [r for r in again.entry.remarks
            if r.get("category") == "backend"]
    assert shed  # the warm hit still surfaces the shed


def test_mismatch_sheds_too(monkeypatch):
    class FakeDivergence:
        ok = False

        def render(self):
            return "run 0: memory diverged (injected)"

    monkeypatch.setattr(validate_mod, "cross_check",
                        lambda *a, **k: FakeDivergence())
    svc = CompilationService(cache=CompileCache(memory=MemoryCache()))
    res = svc.compile_job(_job(backend="compiled", verify_runs=1))
    assert res.error == ""
    assert res.entry.backend == "interp"
    assert svc.stats.backend_shed == 1


def test_stats_render_mentions_backend_shed():
    svc = CompilationService(cache=CompileCache(memory=MemoryCache()))
    svc.compile_job(_pointer_job(backend="compiled"))
    assert "1 shed to interp" in svc.stats.render()
