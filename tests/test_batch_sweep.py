"""Tests for the kernel sweep driver (the paper's measurement loop)."""

import pytest

from repro.interp import sweep
from repro.kernels import MOTIVATION_LOADS
from repro.opt import compile_function
from repro.slp import VectorizerConfig


def compiled(config):
    module, func = MOTIVATION_LOADS.build()
    compile_function(func, config)
    return module, func


class TestSweep:
    def test_counts_invocations(self):
        module, func = compiled(VectorizerConfig.o3())
        result = sweep(module, func, start=0, stop=32, step=2)
        assert result.invocations == 16
        assert result.total_cycles > 0
        assert result.cycles_per_invocation == pytest.approx(
            result.total_cycles / 16
        )

    def test_sweep_speedup_matches_single_invocation(self):
        scalar = sweep(*compiled(VectorizerConfig.o3()),
                       start=0, stop=64, step=2)
        vector = sweep(*compiled(VectorizerConfig.lslp()),
                       start=0, stop=64, step=2)
        # deterministic machine model: the sweep ratio equals the
        # single-invocation ratio (13 vs 6 cycles for this kernel)
        assert scalar.total_cycles / vector.total_cycles == pytest.approx(
            13 / 6
        )

    def test_empty_sweep(self):
        module, func = compiled(VectorizerConfig.o3())
        result = sweep(module, func, start=0, stop=0)
        assert result.invocations == 0
        assert result.cycles_per_invocation == 0.0

    def test_bad_step_rejected(self):
        module, func = compiled(VectorizerConfig.o3())
        with pytest.raises(ValueError):
            sweep(module, func, step=0)

    def test_extra_args_passed(self):
        from tests.conftest import build_kernel

        module, func = build_kernel("""
long A[256], B[256];
void kernel(long i, long k) {
    A[i] = B[i] + k;
}
""")
        result = sweep(module, func, start=0, stop=8, step=1,
                       extra_args={"k": 5})
        assert result.invocations == 8
