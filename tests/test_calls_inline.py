"""Tests for function calls and the inliner."""

import pytest

from repro.frontend import compile_kernel_source, LowerError
from repro.interp import compare_runs, Interpreter, InterpreterError, MemoryImage
from repro.ir import (
    Call,
    Function,
    I64,
    IRBuilder,
    Module,
    parse_module,
    print_module,
    verify_module,
)
from repro.opt import compile_function, run_inline
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel

HELPER = """
long A[1024], B[1024];

long square_plus(long x, long k) {
    return x * x + k;
}

void kernel(long i) {
    A[i + 0] = square_plus(B[i + 0], 1);
    A[i + 1] = square_plus(B[i + 1], 2);
}
"""


class TestCallConstruction:
    def test_type_checked(self):
        module = Module("m")
        callee = module.add_function(
            Function("f", [("x", I64)], I64)
        )
        IRBuilder(callee.add_block("entry")).ret(callee.argument("x"))
        caller = module.add_function(Function("g", [("y", I64)], I64))
        builder = IRBuilder(caller.add_block("entry"))
        call = builder.call(callee, [caller.argument("y")])
        builder.ret(call)
        verify_module(module)
        assert call.type is I64
        assert call.may_read_memory and call.may_write_memory

    def test_argument_mismatch_rejected(self):
        module = Module("m")
        callee = module.add_function(Function("f", [("x", I64)], I64))
        caller = module.add_function(Function("g", [], I64))
        builder = IRBuilder(caller.add_block("entry"))
        with pytest.raises(TypeError, match="argument types"):
            builder.call(callee, [])


class TestFrontendCalls:
    def test_lowering_and_execution(self):
        module = compile_kernel_source(HELPER)
        verify_module(module)
        memory = MemoryImage(module)
        memory.set_array("B", [3, 4] + [0] * 1022)
        Interpreter(memory).run(module.get_function("kernel"), {"i": 0})
        assert memory.get_array("A")[:2] == [10, 18]

    def test_undefined_function_rejected(self):
        with pytest.raises(LowerError, match="undefined function"):
            compile_kernel_source(
                "long A[8];\nvoid kernel(long i) { A[i] = ghost(i); }"
            )

    def test_arity_checked(self):
        with pytest.raises(LowerError, match="argument"):
            compile_kernel_source("""
long A[8];
long f(long x) { return x; }
void kernel(long i) { A[i] = f(i, i); }
""")

    def test_void_call_as_value_rejected(self):
        with pytest.raises(LowerError, match="void function"):
            compile_kernel_source("""
long A[8];
void setit(long i) { A[i] = 1; }
void kernel(long i) { A[i] = setit(i); }
""")

    def test_call_round_trips_through_printer(self):
        module = compile_kernel_source(HELPER)
        text = print_module(module)
        assert "call i64 @square_plus" in text
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text


class TestInliner:
    def test_inlines_straight_line_callee(self):
        module = compile_kernel_source(HELPER)
        func = module.get_function("kernel")
        assert run_inline(func)
        assert not any(
            isinstance(inst, Call) for inst in func.instructions()
        )

    def test_inlining_preserves_semantics(self):
        reference = build_kernel(HELPER)
        module, func = build_kernel(HELPER)
        run_inline(func)
        outcome = compare_runs(reference, (module, func), args={"i": 5})
        assert outcome.equivalent, outcome.detail

    def test_transitive_inlining(self):
        source = """
long A[8], B[8];
long twice(long x) { return x + x; }
long quad(long x) { return twice(twice(x)); }
void kernel(long i) { A[i] = quad(B[i]); }
"""
        module, func = build_kernel(source)
        assert run_inline(func)
        assert not any(
            isinstance(inst, Call) for inst in func.instructions()
        )
        reference = build_kernel(source)
        outcome = compare_runs(reference, (module, func), args={"i": 2})
        assert outcome.equivalent, outcome.detail

    def test_multi_block_callee_not_inlined(self):
        source = """
long A[64], B[64];
long fill_to(long n) {
    for (long j = 0; j < n; j = j + 1) {
        B[j] = j * 2;
    }
    return B[0];
}
void kernel(long i) { A[i] = fill_to(i); }
"""
        # a loop in the callee: stays a call (and still executes right)
        module, func = build_kernel(source)
        assert not run_inline(func)
        assert any(isinstance(inst, Call) for inst in func.instructions())

    def test_inlined_helper_vectorizes(self):
        module, func = build_kernel(HELPER)
        result = compile_function(func, VectorizerConfig.lslp())
        assert result.report.num_vectorized >= 1
        reference = build_kernel(HELPER)
        outcome = compare_runs(reference, (module, func), args={"i": 3})
        assert outcome.equivalent, outcome.detail

    def test_call_cycles_include_callee(self):
        module, func = build_kernel(HELPER)
        memory = MemoryImage(module)
        memory.randomize(seed=1)
        result = Interpreter(memory).run(func, {"i": 0})
        assert result.opcode_counts["call"] == 2
        assert result.opcode_counts["mul"] == 2  # from inside the callee


class TestRecursionGuard:
    def test_runaway_recursion_trapped(self):
        module = Module("m")
        func = module.add_function(Function("f", [("x", I64)], I64))
        builder = IRBuilder(func.add_block("entry"))
        inner = builder.call(func, [func.argument("x")])
        builder.ret(inner)
        memory = MemoryImage(module)
        with pytest.raises(InterpreterError, match="depth"):
            Interpreter(memory).run(func, {"x": 1})

    def test_recursive_call_not_inlined(self):
        module = Module("m")
        func = module.add_function(Function("f", [("x", I64)], I64))
        builder = IRBuilder(func.add_block("entry"))
        inner = builder.call(func, [func.argument("x")])
        builder.ret(inner)
        assert not run_inline(func)
