"""Tests for CFG utilities: predecessors, orders, dominators."""

import pytest

from repro.ir import (
    DominatorInfo,
    Function,
    I1,
    I64,
    IRBuilder,
    predecessors,
    reachable_blocks,
    reverse_post_order,
)


def diamond_cfg():
    func = Function("f", [("c", I1)])
    entry = func.add_block("entry")
    left = func.add_block("left")
    right = func.add_block("right")
    join = func.add_block("join")
    b = IRBuilder(entry)
    b.condbr(func.argument("c"), left, right)
    b.set_block(left)
    b.br(join)
    b.set_block(right)
    b.br(join)
    b.set_block(join)
    b.ret()
    return func, entry, left, right, join


def loop_cfg():
    func = Function("f", [("n", I64)])
    entry = func.add_block("entry")
    header = func.add_block("header")
    body = func.add_block("body")
    exit_block = func.add_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.set_block(header)
    j = b.phi(I64, "j")
    cond = b.icmp("slt", j, func.argument("n"))
    b.condbr(cond, body, exit_block)
    b.set_block(body)
    nxt = b.add(j, b.i64(1))
    b.br(header)
    j.add_incoming(b.i64(0), entry)
    j.add_incoming(nxt, body)
    b.set_block(exit_block)
    b.ret()
    return func, entry, header, body, exit_block


class TestPredecessors:
    def test_diamond(self):
        func, entry, left, right, join = diamond_cfg()
        preds = predecessors(func)
        assert preds[id(entry)] == []
        assert preds[id(left)] == [entry]
        assert set(map(id, preds[id(join)])) == {id(left), id(right)}

    def test_loop_back_edge(self):
        func, entry, header, body, exit_block = loop_cfg()
        preds = predecessors(func)
        assert set(map(id, preds[id(header)])) == {id(entry), id(body)}


class TestOrders:
    def test_reachable_skips_dead_blocks(self):
        func, entry, left, right, join = diamond_cfg()
        dead = func.add_block("dead")
        IRBuilder(dead).ret()
        reachable = reachable_blocks(func)
        assert dead not in reachable
        assert len(reachable) == 4

    def test_rpo_starts_at_entry(self):
        func, entry, *_ = diamond_cfg()
        order = reverse_post_order(func)
        assert order[0] is entry
        assert len(order) == 4

    def test_rpo_visits_before_successors_in_dag(self):
        func, entry, left, right, join = diamond_cfg()
        order = reverse_post_order(func)
        index = {id(block): pos for pos, block in enumerate(order)}
        assert index[id(entry)] < index[id(left)]
        assert index[id(left)] < index[id(join)]
        assert index[id(right)] < index[id(join)]


class TestDominators:
    def test_diamond_dominance(self):
        func, entry, left, right, join = diamond_cfg()
        doms = DominatorInfo(func)
        assert doms.dominates(entry, join)
        assert doms.dominates(entry, left)
        assert not doms.dominates(left, join)
        assert not doms.dominates(right, join)
        assert doms.dominates(join, join)
        assert not doms.strictly_dominates(join, join)

    def test_loop_dominance(self):
        func, entry, header, body, exit_block = loop_cfg()
        doms = DominatorInfo(func)
        assert doms.dominates(header, body)
        assert doms.dominates(header, exit_block)
        assert not doms.dominates(body, exit_block)
        assert not doms.dominates(body, header)

    def test_immediate_dominators(self):
        func, entry, left, right, join = diamond_cfg()
        doms = DominatorInfo(func)
        assert doms.immediate_dominator(entry) is None
        assert doms.immediate_dominator(left) is entry
        assert doms.immediate_dominator(join) is entry

    def test_unreachable_block_dominated_by_nothing(self):
        func, entry, *_ = diamond_cfg()
        dead = func.add_block("dead")
        IRBuilder(dead).ret()
        doms = DominatorInfo(func)
        assert not doms.dominates(entry, dead)

    def test_single_block(self):
        func = Function("f", [])
        entry = func.add_block("entry")
        IRBuilder(entry).ret()
        doms = DominatorInfo(func)
        assert doms.dominates(entry, entry)
