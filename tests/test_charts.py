"""Tests for the ASCII bar-chart renderer."""

import pytest

from repro.experiments import FigureTable, render_bar_chart


def make_table():
    table = FigureTable(
        "Figure X", "demo", ["kernel", "SLP", "LSLP"],
    )
    table.add_row(kernel="alpha", SLP=1.0, LSLP=2.0)
    table.add_row(kernel="beta", SLP=0.5, LSLP=4.0)
    return table


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = render_bar_chart(make_table())
        assert "alpha" in text
        assert "beta" in text
        assert "2.000" in text
        assert "4.000" in text
        assert "Figure X" in text

    def test_bars_scale_to_maximum(self):
        text = render_bar_chart(make_table(), width=40)
        lines = [line for line in text.splitlines() if "LSLP" in line]
        beta_bar = lines[1].split("│")[1].split(" ")[0]
        alpha_bar = lines[0].split("│")[1].split(" ")[0]
        assert len(beta_bar) == 40          # the maximum fills the width
        assert 19 <= len(alpha_bar) <= 21   # half the max ≈ half width

    def test_negative_values_drawn_by_magnitude(self):
        table = FigureTable("F", "costs", ["kernel", "cost"])
        table.add_row(kernel="k", cost=-10)
        text = render_bar_chart(table, width=10)
        assert "-10" in text
        assert "█" in text

    def test_zero_row(self):
        table = FigureTable("F", "flat", ["kernel", "v"])
        table.add_row(kernel="k", v=0)
        text = render_bar_chart(table)
        assert "│ 0" in text

    def test_non_numeric_table_falls_back(self):
        table = FigureTable("F", "words", ["kernel", "origin"])
        table.add_row(kernel="k", origin="somewhere")
        text = render_bar_chart(table)
        assert "somewhere" in text  # table render fallback

    def test_notes_preserved(self):
        table = make_table()
        table.notes.append("a caveat")
        assert "note: a caveat" in render_bar_chart(table)


class TestCLIChart:
    def test_figures_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["figures", "table2", "--chart"]) == 0
        # table2 has no numeric columns: falls back to the table form
        out = capsys.readouterr().out
        assert "Table 2" in out
