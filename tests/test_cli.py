"""Tests for the ``lslp`` command-line interface."""

import pytest

from repro.cli import main

KERNEL = """
long A[1024], B[1024], C[1024];
void kernel(long i) {
    A[i + 0] = (B[i + 0] << 1) & (C[i + 0] << 2);
    A[i + 1] = (C[i + 1] << 3) & (B[i + 1] << 4);
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(KERNEL)
    return str(path)


class TestCompile:
    def test_lslp_vectorizes(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--report"]) == 0
        out = capsys.readouterr().out
        assert "static cost -6" in out
        assert "<2 x i64>" in out
        assert "vectorized" in out

    def test_slp_leaves_scalar(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--config", "slp",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "static cost 0" in out
        assert "<2 x i64>" not in out
        assert "rejected" in out

    def test_print_before(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--print-before"]) == 0
        out = capsys.readouterr().out
        assert "; --- before ---" in out
        assert out.index("before") < out.index("after")

    def test_lookahead_zero_behaves_like_slp(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--look-ahead", "0",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "static cost 0" in out

    def test_sse_target(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--target", "sse-like"]) == 0

    def test_missing_file(self, capsys):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["compile", "/nonexistent/kernel.c"])


class TestRun:
    def test_run_reports_cycles(self, kernel_file, capsys):
        assert main(["run", kernel_file, "--arg", "i=4",
                     "--dump", "A", "--dump-count", "4"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "@A[0:4]" in out

    def test_run_matches_scalar_results(self, kernel_file, capsys):
        main(["run", kernel_file, "--config", "o3", "--arg", "i=4",
              "--dump", "A"])
        scalar = capsys.readouterr().out.splitlines()[-1]
        main(["run", kernel_file, "--config", "lslp", "--arg", "i=4",
              "--dump", "A"])
        vector = capsys.readouterr().out.splitlines()[-1]
        assert scalar == vector

    def test_malformed_arg(self, kernel_file):
        with pytest.raises(SystemExit, match="malformed"):
            main(["run", kernel_file, "--arg", "i"])


class TestInspection:
    def test_kernels_lists_catalog(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "453.calc-z3" in out
        assert "motivation-multi" in out

    def test_figures_table2(self, capsys):
        assert main(["figures", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_unknown_figure(self):
        with pytest.raises(SystemExit, match="unknown figure"):
            main(["figures", "fig99"])


class TestTrace:
    def test_trace_prints_instructions(self, kernel_file, capsys):
        assert main(["run", kernel_file, "--arg", "i=4", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "; ->" in out
        assert "store" in out

    def test_trace_limit(self, kernel_file, capsys):
        assert main(["run", kernel_file, "--arg", "i=4", "--trace",
                     "--trace-limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "more)" in out
