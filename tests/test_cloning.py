"""Tests for instruction cloning with value remapping."""

import pytest

from repro.ir import (
    Br,
    clone_instruction,
    Constant,
    Function,
    GlobalArray,
    I64,
    IRBuilder,
    map_value,
    Module,
    Phi,
)


@pytest.fixture
def env():
    module = Module("m")
    a = module.add_global(GlobalArray("A", I64, 16))
    func = Function("f", [("i", I64), ("j", I64)])
    builder = IRBuilder(func.add_block("entry"))
    return module, func, builder, a


def test_map_value_identity_default(env):
    module, func, builder, a = env
    i = func.argument("i")
    assert map_value(i, {}) is i
    j = func.argument("j")
    assert map_value(i, {id(i): j}) is j


def test_clone_binop_with_remap(env):
    module, func, builder, a = env
    i, j = func.arguments
    add = builder.add(i, builder.i64(1))
    clone = clone_instruction(add, {id(i): j})
    assert clone is not add
    assert clone.opcode == "add"
    assert clone.operands[0] is j
    assert clone.operands[1] is add.operands[1]
    assert clone.parent is None


def test_clone_memory_chain(env):
    module, func, builder, a = env
    i, j = func.arguments
    gep = builder.gep(a, i)
    load = builder.load(gep)
    store = builder.store(load, gep)
    vmap = {id(i): j}
    gep2 = clone_instruction(gep, vmap)
    vmap[id(gep)] = gep2
    load2 = clone_instruction(load, vmap)
    vmap[id(load)] = load2
    store2 = clone_instruction(store, vmap)
    assert gep2.index is j
    assert load2.ptr is gep2
    assert store2.value is load2
    assert store2.ptr is gep2


def test_clone_cmp_select_and_vector_ops(env):
    module, func, builder, a = env
    i, j = func.arguments
    cmp = builder.icmp("slt", i, j)
    sel = builder.select(cmp, i, j)
    vec = builder.build_vector([i, j])
    shuf = builder.shufflevector(vec, vec, [1, 0])
    ext = builder.extractelement(shuf, 0)
    splat = builder.splat(ext, 2)
    for inst in (cmp, sel, shuf, ext, splat):
        clone = clone_instruction(inst, {})
        assert clone.opcode == inst.opcode
        assert clone.type is inst.type
    cmp_clone = clone_instruction(cmp, {})
    assert cmp_clone.predicate == "slt"
    shuf_clone = clone_instruction(shuf, {})
    assert shuf_clone.mask == (1, 0)


def test_control_flow_not_clonable(env):
    module, func, builder, a = env
    other = func.add_block("other")
    br = Br(other)
    with pytest.raises(ValueError, match="control flow"):
        clone_instruction(br, {})
    phi = Phi(I64)
    with pytest.raises(ValueError, match="control flow"):
        clone_instruction(phi, {})
