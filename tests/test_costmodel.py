"""Tests for the target cost model (TTI stand-in)."""

import pytest

from repro.costmodel import (
    expensive_shuffle,
    scalar_only,
    skylake_like,
    sse_like,
    target_by_name,
    TargetCostModel,
    TargetDescription,
)
from repro.ir import (
    Argument,
    BinaryOperator,
    Constant,
    GlobalArray,
    I32,
    I64,
    F64,
    Load,
    Store,
    vector_of,
)


@pytest.fixture
def tti():
    return skylake_like()


class TestPaperCostValues:
    """The exact numbers the paper's worked examples rely on (§3.1)."""

    def test_two_wide_alu_group_saves_one(self, tti):
        assert tti.group_savings("add", 2) == -1
        assert tti.group_savings("and", 2) == -1
        assert tti.group_savings("shl", 2) == -1

    def test_two_wide_load_store_groups_save_one(self, tti):
        assert tti.group_savings("load", 2) == -1
        assert tti.group_savings("store", 2) == -1

    def test_four_wide_alu_group_saves_three(self, tti):
        assert tti.group_savings("fmul", 4) == -3

    def test_mixed_gather_costs_lane_count(self, tti):
        x = Argument(I64, "x")
        c = Constant(I64, 1)
        assert tti.gather_cost([x, c]) == 2
        assert tti.gather_cost([x, c, c, x]) == 4

    def test_constant_gather_is_free(self, tti):
        assert tti.gather_cost([Constant(I64, 1), Constant(I64, 3)]) == 0

    def test_splat_gather_costs_one_broadcast(self, tti):
        x = Argument(I64, "x")
        assert tti.gather_cost([x, x, x, x]) == 1

    def test_extract_cost(self, tti):
        assert tti.extract_cost_for(1) == 1
        assert tti.extract_cost_for(3) == 3


class TestCapabilities:
    def test_max_lanes_avx2(self, tti):
        assert tti.max_lanes(I64) == 4
        assert tti.max_lanes(I32) == 8
        assert tti.max_lanes(F64) == 4

    def test_supports_vector(self, tti):
        assert tti.supports_vector(vector_of(I64, 4))
        assert not tti.supports_vector(vector_of(I64, 8))

    def test_sse_target_is_narrower(self):
        assert sse_like().max_lanes(I64) == 2

    def test_division_is_expensive(self, tti):
        assert tti.scalar_op_cost("sdiv") > tti.scalar_op_cost("add")
        assert tti.vector_op_cost("fdiv", 4) > tti.vector_op_cost("fmul", 4)

    def test_gep_is_free(self, tti):
        assert tti.scalar_op_cost("gep") == 0

    def test_opcode_cost_override(self):
        tti = TargetCostModel(
            TargetDescription(opcode_costs={"mul": (3, 5)})
        )
        assert tti.scalar_op_cost("mul") == 3
        assert tti.vector_op_cost("mul", 4) == 5


class TestIssueCosts:
    def test_scalar_vs_vector_load(self, tti):
        array = GlobalArray("A", I64, 8)
        scalar = Load(I64, array)
        vector = Load(vector_of(I64, 4), array)
        assert tti.issue_cost(scalar) == 1
        assert tti.issue_cost(vector) == 1

    def test_vector_binop_issue_cost(self, tti):
        vec = vector_of(I64, 4)
        add = BinaryOperator("add", Argument(vec, "x"), Argument(vec, "y"))
        assert tti.issue_cost(add) == 1

    def test_store_issue_cost(self, tti):
        array = GlobalArray("A", I64, 8)
        store = Store(Argument(I64, "x"), array)
        assert tti.issue_cost(store) == 1


class TestRegistry:
    def test_lookup_by_name(self):
        assert target_by_name("skylake-like").name == "skylake-like"
        assert target_by_name("sse-like").name == "sse-like"

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            target_by_name("m1-like")

    def test_scalar_only_never_profits(self):
        tti = scalar_only()
        assert tti.group_savings("add", 2) > 0
        assert tti.group_savings("load", 2) > 0

    def test_expensive_shuffle_gathers(self):
        tti = expensive_shuffle()
        x = Argument(I64, "x")
        assert tti.gather_cost([x, Constant(I64, 1)]) == 6
