"""Smoke tests: every example script must run cleanly end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    if path.stem == "run_all_figures":
        monkeypatch.setattr(sys, "argv", [str(path), "--quick"])
    else:
        monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_there_are_enough_examples():
    assert len(EXAMPLES) >= 5
