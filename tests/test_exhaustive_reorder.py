"""Tests for the exhaustive (backtracking) reordering ablation."""

import pytest

from dataclasses import replace

from repro.interp import compare_runs
from repro.ir import (
    Constant,
    Function,
    GlobalArray,
    I64,
    IRBuilder,
    Module,
    verify_function,
)
from repro.opt import compile_function
from repro.slp import (
    ExhaustiveReorderer,
    LookAheadContext,
    OperandReorderer,
    VectorizerConfig,
)
from repro.kernels import EVALUATION_KERNELS
from tests.conftest import build_kernel


@pytest.fixture
def env():
    module = Module("m")
    arrays = {
        name: module.add_global(GlobalArray(name, I64, 64))
        for name in "ABCD"
    }
    func = Function("f", [("i", I64)])
    builder = IRBuilder(func.add_block("entry"))
    return module, func, builder, arrays, LookAheadContext()


def load_at(builder, array, index_value, offset):
    idx = builder.add(index_value, builder.i64(offset))
    return builder.load(builder.gep(array, idx))


class TestExhaustiveReorderer:
    def test_matches_greedy_on_simple_swap(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        b, c = arrays["B"], arrays["C"]
        shl_b0 = builder.shl(load_at(builder, b, i, 0), builder.i64(1))
        shl_c0 = builder.shl(load_at(builder, c, i, 0), builder.i64(2))
        shl_c1 = builder.shl(load_at(builder, c, i, 1), builder.i64(3))
        shl_b1 = builder.shl(load_at(builder, b, i, 1), builder.i64(4))
        groups = [[shl_b0, shl_c1], [shl_c0, shl_b1]]
        greedy = OperandReorderer(ctx, look_ahead_depth=2).reorder(groups)
        exhaustive = ExhaustiveReorderer(
            ctx, look_ahead_depth=2
        ).reorder(groups)
        assert exhaustive.final_order == greedy.final_order

    def test_falls_back_when_too_big(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        # 6 slots x 5 lanes -> 720^4 assignments: way over budget
        groups = [
            [builder.add(i, builder.i64(10 * s + lane)) for lane in range(5)]
            for s in range(6)
        ]
        reorderer = ExhaustiveReorderer(ctx, max_assignments=100)
        result = reorderer.reorder(groups)
        assert len(result.final_order) == 6

    def test_lane0_fixed_in_place(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        c0, c1 = Constant(I64, 1), Constant(I64, 2)
        a0 = builder.add(i, builder.i64(1))
        a1 = builder.add(i, builder.i64(2))
        result = ExhaustiveReorderer(ctx).reorder([[c0, a1], [a0, c1]])
        assert result.final_order[0][0] is c0
        assert result.final_order[1][0] is a0

    def test_empty(self, env):
        *_, ctx = env
        assert ExhaustiveReorderer(ctx).reorder([]).final_order == []


class TestExhaustiveConfig:
    def test_config_plumbs_through(self):
        config = replace(
            VectorizerConfig.lslp(), reorder_strategy="exhaustive",
            name="LSLP-exhaustive",
        )
        kernel = EVALUATION_KERNELS[0]
        reference = kernel.build()
        module, func = kernel.build()
        compile_function(func, config)
        verify_function(func)
        out = compare_runs(reference, (module, func),
                           args=kernel.default_args)
        assert out.equivalent, out.detail

    def test_exhaustive_at_least_as_good_as_greedy(self):
        exhaustive_config = replace(
            VectorizerConfig.lslp(), reorder_strategy="exhaustive"
        )
        for kernel in EVALUATION_KERNELS:
            _, greedy_func = kernel.build()
            greedy = compile_function(greedy_func, VectorizerConfig.lslp())
            _, ex_func = kernel.build()
            exhaustive = compile_function(ex_func, exhaustive_config)
            assert exhaustive.static_cost <= greedy.static_cost + 1, (
                kernel.name
            )

    def test_unknown_strategy_rejected(self):
        config = replace(VectorizerConfig.lslp(),
                         reorder_strategy="quantum")
        _, func = build_kernel(
            "long A[8], B[8];\nvoid kernel(long i) {"
            " A[i] = B[i]; A[i+1] = B[i+1]; }"
        )
        with pytest.raises(ValueError, match="unknown reorder strategy"):
            compile_function(func, config)
