"""Tests for the experiment harness: each figure's qualitative claims.

These assert the paper's *shape*: who wins, where, in what order — not
absolute numbers (our substrate is a simulator, not Skylake).
"""

import pytest

from repro.experiments import (
    fig9_speedup,
    fig10_static_cost,
    fig11_suite_cost,
    fig12_suite_speedup,
    fig13_sensitivity,
    fig14_compile_time,
    geomean,
    measure_kernel,
    PAPER_CONFIGS,
    table2_kernels,
)
from repro.kernels import EVALUATION_KERNELS, MOTIVATION_KERNELS

# computing the figures is moderately expensive; share them per module
pytestmark = pytest.mark.filterwarnings("ignore")


@pytest.fixture(scope="module")
def fig9():
    return fig9_speedup()


@pytest.fixture(scope="module")
def fig10():
    return fig10_static_cost()


@pytest.fixture(scope="module")
def fig11():
    return fig11_suite_cost()


@pytest.fixture(scope="module")
def fig12():
    return fig12_suite_speedup()


@pytest.fixture(scope="module")
def fig13():
    return fig13_sensitivity(kernels=MOTIVATION_KERNELS)


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestMeasureKernel:
    def test_fields_populated(self):
        measurement = measure_kernel(EVALUATION_KERNELS[0],
                                     PAPER_CONFIGS[-1])
        assert measurement.kernel == EVALUATION_KERNELS[0].name
        assert measurement.config == "LSLP"
        assert measurement.cycles > 0
        assert measurement.compile_seconds > 0


class TestTable2:
    def test_lists_all_kernels(self):
        table = table2_kernels()
        assert len(table.rows) == 11
        assert "453.vsumsqr" in table.column("kernel")
        rendered = table.render()
        assert "povray" in rendered


class TestFigure9Claims:
    def test_columns_and_gmean_row(self, fig9):
        assert fig9.columns == ["kernel", "SLP-NR", "SLP", "LSLP"]
        assert fig9.rows[-1]["kernel"] == "GMean"

    def test_lslp_wins_on_geomean(self, fig9):
        gmean = fig9.rows[-1]
        assert gmean["LSLP"] > gmean["SLP"] > gmean["SLP-NR"] >= 1.0

    def test_motivation_kernels_only_lslp(self, fig9):
        for name in ("motivation-loads", "motivation-opcodes"):
            row = fig9.row_for("kernel", name)
            assert row["SLP"] == pytest.approx(1.0)
            assert row["SLP-NR"] == pytest.approx(1.0)
            assert row["LSLP"] > 1.1

    def test_lslp_never_slower_than_o3(self, fig9):
        for row in fig9.rows[:-1]:
            assert row["LSLP"] >= 1.0

    def test_calc_z3_is_a_big_lslp_win(self, fig9):
        row = fig9.row_for("kernel", "453.calc-z3")
        assert row["LSLP"] > 2.0
        assert row["SLP"] == pytest.approx(1.0)


class TestFigure10Claims:
    def test_lslp_costs_dominate(self, fig10):
        for row in fig10.rows[:-1]:
            assert row["LSLP"] <= row["SLP"]

    def test_paper_exact_values(self, fig10):
        assert fig10.row_for("kernel", "motivation-loads")["LSLP"] == -6
        assert fig10.row_for("kernel", "motivation-opcodes")["LSLP"] == -2
        assert fig10.row_for("kernel", "motivation-multi")["LSLP"] == -10

    def test_mean_ordering(self, fig10):
        mean = fig10.rows[-1]
        assert mean["LSLP"] < mean["SLP"] < mean["SLP-NR"] <= 0


class TestFigure11Claims:
    def test_normalized_to_slp(self, fig11):
        for row in fig11.rows[:-1]:
            assert row["SLP"] == pytest.approx(100.0)

    def test_lslp_improves_average(self, fig11):
        gmean = fig11.rows[-1]
        assert gmean["LSLP"] < 100.0
        assert gmean["SLP-NR"] > 100.0

    def test_bwaves_untouched(self, fig11):
        row = fig11.row_for("suite", "410.bwaves")
        assert row["LSLP"] == pytest.approx(100.0)

    def test_povray_most_improved(self, fig11):
        values = [row["LSLP"] for row in fig11.rows[:-1]]
        povray = fig11.row_for("suite", "453.povray")["LSLP"]
        assert povray == min(values)


class TestFigure12Claims:
    def test_dilution(self, fig12):
        """Whole-benchmark speedups are small (~1%), unlike Figure 9."""
        gmean = fig12.rows[-1]
        assert 1.0 <= gmean["LSLP"] < 1.10

    def test_lslp_best_on_sensitive_suites(self, fig12):
        for suite in ("453.povray", "435.gromacs"):
            row = fig12.row_for("suite", suite)
            assert row["LSLP"] > row["SLP"]

    def test_no_suite_regresses(self, fig12):
        for row in fig12.rows[:-1]:
            assert row["LSLP"] >= row["SLP"] - 1e-9


class TestFigure13Claims:
    def test_la0_equals_slp_level(self, fig13):
        """Paper §5.3: disabling look-ahead brings LSLP down to SLP."""
        gmean = fig13.rows[-1]
        assert gmean["LSLP-LA0"] == pytest.approx(gmean["SLP"], rel=0.05)

    def test_depth_is_monotone(self, fig13):
        gmean = fig13.rows[-1]
        assert (gmean["LSLP-LA0"] <= gmean["LSLP-LA1"]
                <= gmean["LSLP-LA2"] <= gmean["LSLP-LA4"] <= 1.0 + 1e-9)

    def test_multi_node_size_matters(self, fig13):
        gmean = fig13.rows[-1]
        assert gmean["LSLP-Multi1"] <= gmean["LSLP-Multi3"]
        # motivation-multi specifically needs multi-nodes
        row = fig13.row_for("kernel", "motivation-multi")
        assert row["LSLP-Multi1"] < 1.0

    def test_full_lslp_is_the_reference(self, fig13):
        for row in fig13.rows:
            assert row["LSLP"] == pytest.approx(1.0)


class TestFigure14Claims:
    def test_vectorizers_cost_compile_time(self):
        table = fig14_compile_time(kernels=MOTIVATION_KERNELS, repeats=3)
        gmean = table.rows[-1]
        # all vectorizing configs are slower than O3, and LSLP adds
        # overhead over SLP (the paper's direction, magnified here
        # because our whole pipeline is small)
        assert gmean["SLP-NR"] > 1.0
        assert gmean["SLP"] > 1.0
        assert gmean["LSLP"] > 1.0


class TestRendering:
    def test_render_contains_all_rows(self, fig9):
        text = fig9.render()
        for kernel in EVALUATION_KERNELS:
            assert kernel.name in text
        assert "GMean" in text
        assert "note:" in text
