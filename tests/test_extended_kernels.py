"""Tests for the extended (helper/loop-style) kernels."""

import pytest

from repro.experiments.runner import PAPER_CONFIGS
from repro.interp import compare_runs
from repro.ir import Call, verify_function
from repro.kernels import EXTENDED_KERNELS, BOY_SURFACE_LOOP
from repro.opt import compile_function
from repro.slp import VectorizerConfig


@pytest.mark.parametrize("config", PAPER_CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("kernel", EXTENDED_KERNELS, ids=lambda k: k.name)
def test_extended_kernel_correct_under_config(kernel, config):
    reference = kernel.build()
    module, func = kernel.build()
    compile_function(func, config, verify_each=True)
    verify_function(func)
    outcome = compare_runs(reference, (module, func),
                           args=kernel.default_args)
    assert outcome.equivalent, (
        f"{kernel.name} under {config.name}: {outcome.detail}"
    )


def test_helpers_fully_inlined_and_vectorized():
    for kernel in EXTENDED_KERNELS:
        module, func = kernel.build()
        result = compile_function(func, VectorizerConfig.lslp())
        assert not any(
            isinstance(inst, Call) for inst in func.instructions()
        ), kernel.name
        assert result.report.num_vectorized >= 1, kernel.name


def test_boy_surface_loop_differentiates_lslp():
    _, slp_func = BOY_SURFACE_LOOP.build()
    slp = compile_function(slp_func, VectorizerConfig.slp())
    _, lslp_func = BOY_SURFACE_LOOP.build()
    lslp = compile_function(lslp_func, VectorizerConfig.lslp())
    assert lslp.static_cost < slp.static_cost
