"""Tests for the miniature FileCheck engine itself."""

import pytest

from tests.filecheck import (
    FileCheckError,
    parse_directives,
    run_filecheck,
)

OUTPUT = """\
define void @kernel(i64 %i) {
entry:
  %vec = load <2 x i64>, i64* %ptr
  %vec1 = shl <2 x i64> %vec, <2 x i64> <1, 4>
  store <2 x i64> %vec1, i64* %ptr2
  ret void
}
"""


class TestParsing:
    def test_parses_kinds(self):
        source = """
// CHECK: a
// CHECK-NEXT: b
// CHECK-NOT: c
// CHECK-DAG: d
"""
        kinds = [d.kind for d in parse_directives(source)]
        assert kinds == ["CHECK", "CHECK-NEXT", "CHECK-NOT", "CHECK-DAG"]

    def test_semicolon_and_hash_comments(self):
        source = "; CHECK: x\n# CHECK: y\n"
        assert len(parse_directives(source)) == 2

    def test_line_numbers(self):
        source = "int x;\n// CHECK: x\n"
        (directive,) = parse_directives(source)
        assert directive.line_no == 2


class TestMatching:
    def test_plain_check_sequence(self):
        run_filecheck(OUTPUT, """
// CHECK: define void @kernel
// CHECK: load <2 x i64>
// CHECK: store <2 x i64>
""")

    def test_out_of_order_fails(self):
        with pytest.raises(FileCheckError, match="no match"):
            run_filecheck(OUTPUT, """
// CHECK: store <2 x i64>
// CHECK: load <2 x i64>
""")

    def test_check_next(self):
        run_filecheck(OUTPUT, """
// CHECK: %vec = load
// CHECK-NEXT: %vec1 = shl
""")

    def test_check_next_fails_on_gap(self):
        with pytest.raises(FileCheckError, match="CHECK-NEXT"):
            run_filecheck(OUTPUT, """
// CHECK: %vec = load
// CHECK-NEXT: store
""")

    def test_check_not_between_matches(self):
        run_filecheck(OUTPUT, """
// CHECK: entry:
// CHECK-NOT: call
// CHECK: ret void
""")

    def test_check_not_trips(self):
        with pytest.raises(FileCheckError, match="CHECK-NOT"):
            run_filecheck(OUTPUT, """
// CHECK: entry:
// CHECK-NOT: shl
// CHECK: ret void
""")

    def test_check_not_at_end(self):
        run_filecheck(OUTPUT, """
// CHECK: ret void
// CHECK-NOT: anything after
""")

    def test_check_dag_any_order(self):
        run_filecheck(OUTPUT, """
// CHECK-DAG: store <2 x i64>
// CHECK-DAG: load <2 x i64>
""")

    def test_regex_blocks(self):
        run_filecheck(OUTPUT, """
// CHECK: %vec{{[0-9]*}} = shl <2 x i64>
""")

    def test_variables_capture_and_reuse(self):
        run_filecheck(OUTPUT, """
// CHECK: [[V:%vec[0-9]*]] = shl
// CHECK-NEXT: store <2 x i64> [[V]],
""")

    def test_variable_mismatch_fails(self):
        with pytest.raises(FileCheckError):
            run_filecheck(OUTPUT, """
// CHECK: [[V:%vec]] = load
// CHECK: store <2 x i64> [[V]],
""")

    def test_undefined_variable(self):
        with pytest.raises(FileCheckError, match="undefined"):
            run_filecheck(OUTPUT, "// CHECK: [[GHOST]]\n")

    def test_no_directives_is_an_error(self):
        with pytest.raises(FileCheckError, match="no CHECK directives"):
            run_filecheck(OUTPUT, "int main;\n")

    def test_error_message_contains_context(self):
        with pytest.raises(FileCheckError) as info:
            run_filecheck(OUTPUT, "// CHECK: %ghost = mul\n")
        assert "pattern" in str(info.value)
        assert "output context" in str(info.value)
