"""Tests for the mini C-like frontend: lexer, parser, lowering."""

import pytest

from repro.frontend import (
    BinaryExpr,
    compile_kernel_source,
    IndexExpr,
    LexError,
    LowerError,
    NumExpr,
    parse_program,
    ParseError,
    tokenize,
)
from repro.ir import F64, I64, verify_module


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("A[i] = B[i] << 2;")
        kinds = [t.kind for t in tokens]
        assert kinds == ["NAME", "[", "NAME", "]", "=", "NAME", "[",
                         "NAME", "]", "<<", "NUMBER", ";"]

    def test_keywords(self):
        tokens = tokenize("unsigned long void return")
        assert all(t.kind == "KEYWORD" for t in tokens)

    def test_hex_numbers(self):
        (token,) = tokenize("0x1F")
        assert token.kind == "NUMBER"
        assert int(token.text, 0) == 31

    def test_float_numbers(self):
        tokens = tokenize("2.5 1e9 3.25e-2")
        assert [t.kind for t in tokens] == ["NUMBER"] * 3

    def test_line_comments(self):
        tokens = tokenize("a // comment\nb")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_block_comments(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens] == ["a", "b"]
        assert tokens[1].line == 2

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_bad_character(self):
        with pytest.raises(LexError) as info:
            tokenize("a $ b")
        assert info.value.line == 1

    def test_line_tracking(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens] == [1, 2, 3]


class TestParser:
    def test_array_declarations(self):
        program = parse_program("long A[256], B[];\ndouble X[16];")
        assert [a.name for a in program.arrays] == ["A", "B", "X"]
        assert program.arrays[0].size == 256
        assert program.arrays[1].size == 1024  # default
        assert program.arrays[2].ctype.kind == "double"

    def test_unsigned_arrays(self):
        program = parse_program("unsigned long A[4];")
        assert program.arrays[0].ctype.unsigned

    def test_function_with_params(self):
        program = parse_program(
            "long A[4];\nvoid k(long i, long j) { A[i] = j; }"
        )
        func = program.functions[0]
        assert func.name == "k"
        assert [p.name for p in func.params] == ["i", "j"]

    def test_precedence_shift_binds_tighter_than_and(self):
        program = parse_program(
            "long A[4], B[4];\nvoid k(long i) { A[i] = B[i] << 1 & 3; }"
        )
        store = program.functions[0].body[0]
        assert isinstance(store.value, BinaryExpr)
        assert store.value.op == "&"
        assert store.value.lhs.op == "<<"

    def test_precedence_mul_over_add(self):
        program = parse_program(
            "long A[4];\nvoid k(long i) { A[i] = 1 + 2 * 3; }"
        )
        expr = program.functions[0].body[0].value
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_parentheses_override(self):
        program = parse_program(
            "long A[4];\nvoid k(long i) { A[i] = (1 + 2) * 3; }"
        )
        expr = program.functions[0].body[0].value
        assert expr.op == "*"

    def test_left_associativity(self):
        program = parse_program(
            "long A[4];\nvoid k(long i) { A[i] = 1 - 2 - 3; }"
        )
        expr = program.functions[0].body[0].value
        assert expr.op == "-"
        assert isinstance(expr.lhs, BinaryExpr)
        assert expr.lhs.op == "-"
        assert isinstance(expr.rhs, NumExpr)

    def test_ternary(self):
        program = parse_program(
            "long A[4];\nvoid k(long i) { A[i] = i < 2 ? 1 : 0; }"
        )
        from repro.frontend import ConditionalExpr

        assert isinstance(program.functions[0].body[0].value,
                          ConditionalExpr)

    def test_let_and_return(self):
        program = parse_program("""
long A[4];
long k(long i) {
    long t = A[i] * 3;
    return t;
}
""")
        body = program.functions[0].body
        assert body[0].name == "t"
        assert body[1].value is not None

    def test_unary_operators(self):
        program = parse_program(
            "long A[4];\nvoid k(long i) { A[i] = -A[i] + ~i; }"
        )
        expr = program.functions[0].body[0].value
        assert expr.lhs.op == "-"
        assert expr.rhs.op == "~"

    def test_syntax_error_reports_position(self):
        with pytest.raises(ParseError, match="2:"):
            parse_program("long A[4];\nvoid k(long i) { A[i] = ; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("long A[4]")


class TestLowering:
    def test_types_map(self):
        module = compile_kernel_source("""
long A[8];
double X[8];
void kernel(long i) {
    A[i] = 1;
    X[i] = 2.5;
}
""")
        verify_module(module)
        assert module.get_global("A").element is I64
        assert module.get_global("X").element is F64

    def test_store_load_shapes(self):
        module = compile_kernel_source("""
long A[8], B[8];
void kernel(long i) {
    A[i] = B[i + 1];
}
""")
        func = module.get_function("kernel")
        opcodes = [inst.opcode for inst in func.entry]
        assert opcodes == ["add", "gep", "load", "gep", "store", "ret"]

    def test_unsigned_shift_lowered_logical(self):
        module = compile_kernel_source("""
unsigned long A[8], B[8];
void kernel(long i) {
    A[i] = B[i] >> 2;
}
""")
        opcodes = [inst.opcode for inst in
                   module.get_function("kernel").entry]
        assert "lshr" in opcodes
        assert "ashr" not in opcodes

    def test_signed_shift_lowered_arithmetic(self):
        module = compile_kernel_source("""
long A[8], B[8];
void kernel(long i) {
    A[i] = B[i] >> 2;
}
""")
        opcodes = [inst.opcode for inst in
                   module.get_function("kernel").entry]
        assert "ashr" in opcodes

    def test_float_ops_lowered(self):
        module = compile_kernel_source("""
double A[8], B[8];
void kernel(long i) {
    A[i] = B[i] * 2.0 + 1.5;
}
""")
        opcodes = [inst.opcode for inst in
                   module.get_function("kernel").entry]
        assert "fmul" in opcodes
        assert "fadd" in opcodes

    def test_int_literal_adapts_to_float_context(self):
        module = compile_kernel_source("""
double A[8], B[8];
void kernel(long i) {
    A[i] = B[i] * 2;
}
""")
        verify_module(module)

    def test_float_literal_in_int_context_rejected(self):
        with pytest.raises(LowerError):
            compile_kernel_source("""
long A[8];
void kernel(long i) {
    A[i] = 2.5;
}
""")

    def test_mixed_array_types_rejected(self):
        with pytest.raises(LowerError):
            compile_kernel_source("""
long A[8];
double X[8];
void kernel(long i) {
    A[i] = X[i];
}
""")

    def test_undeclared_array_rejected(self):
        with pytest.raises(LowerError, match="undeclared"):
            compile_kernel_source(
                "long A[8];\nvoid kernel(long i) { Z[i] = 1; }"
            )

    def test_undefined_variable_rejected(self):
        with pytest.raises(LowerError, match="undefined"):
            compile_kernel_source(
                "long A[8];\nvoid kernel(long i) { A[i] = ghost; }"
            )

    def test_redefinition_rejected(self):
        with pytest.raises(LowerError, match="redefinition"):
            compile_kernel_source("""
long A[8];
void kernel(long i) {
    long t = 1;
    long t = 2;
    A[i] = t;
}
""")

    def test_missing_return_rejected(self):
        with pytest.raises(LowerError, match="missing return"):
            compile_kernel_source("long A[8];\nlong kernel(long i) { }")

    def test_return_value(self):
        module = compile_kernel_source("""
long A[8];
long kernel(long i) {
    return A[i] + 1;
}
""")
        func = module.get_function("kernel")
        assert func.entry.terminator.return_value is not None

    def test_ternary_lowered_to_select(self):
        module = compile_kernel_source("""
long A[8], B[8];
void kernel(long i) {
    A[i] = B[i] < 4 ? B[i] : 4;
}
""")
        opcodes = [inst.opcode for inst in
                   module.get_function("kernel").entry]
        assert "icmp" in opcodes
        assert "select" in opcodes

    def test_locals_are_ssa_values(self):
        module = compile_kernel_source("""
long A[8], B[8];
void kernel(long i) {
    long t = B[i] * 3;
    A[i] = t + t;
}
""")
        verify_module(module)
        func = module.get_function("kernel")
        muls = [inst for inst in func.entry if inst.opcode == "mul"]
        assert len(muls) == 1
        assert muls[0].num_uses == 2
