"""Tests for the if-conversion pass (repro.opt.ifconvert).

Covers the shape matcher (diamonds, triangles, nested regions), the
speculation/dereferenceability legality rules, the predicated-store
rewrites, the cost gate, diagnostics (remark + record + metric on every
decline), printer/parser round-trips of converted IR, and the
end-to-end claim: the branchy kernel family goes from zero vector
seeds to vectorized select trees under ``--ifconvert``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.backend import cross_check
from repro.costmodel.targets import skylake_like
from repro.costmodel.tti import TargetCostModel
from repro.interp import compare_runs, run_on_fresh_memory
from repro.ir import (
    CondBr,
    I64,
    IRBuilder,
    Function,
    GlobalArray,
    Load,
    Module,
    parse_module,
    print_module,
    Select,
    Store,
    verify_function,
)
from repro.kernels import BRANCHY_KERNELS
from repro.obs import ListSink, metrics, records
from repro.opt import compile_function, IFCONVERT_MODES, run_ifconvert
from repro.opt.ifconvert import is_speculatable
from repro.slp import VectorizerConfig

TARGET = skylake_like()


def _build(source: str):
    from tests.conftest import build_kernel

    return build_kernel(source)


def _selects(func):
    return [i for b in func.blocks for i in b.instructions
            if isinstance(i, Select)]


def _condbrs(func):
    return [b.terminator for b in func.blocks
            if isinstance(b.terminator, CondBr)]


def _assert_equivalent(source: str, mode: str = "on", **args):
    """Converted (or declined) function computes what the original does."""
    reference = _build(source)
    module, func = _build(source)
    run_ifconvert(func, mode=mode, target=TARGET)
    verify_function(func)
    outcome = compare_runs(reference, (module, func),
                           args=args or {"i": 4}, seed=11)
    assert outcome.equivalent, outcome.detail
    return module, func


DIAMOND_ABS = """
long A[64], B[64];
void kernel(long i) {
    if (A[i + 0] < 0) { B[i + 0] = 0 - A[i + 0]; } else { B[i + 0] = A[i + 0]; }
}
"""

HAMMOCK_MAX = """
double B[64], C[64];
void kernel(long i) {
    if (C[i + 0] < B[i + 0]) { C[i + 0] = B[i + 0]; }
}
"""

NESTED_CLAMP = """
long A[64], B[64];
void kernel(long i) {
    if (A[i + 0] > 127) { B[i + 0] = 127; } else {
        if (A[i + 0] < 0 - 128) { B[i + 0] = 0 - 128; } else { B[i + 0] = A[i + 0]; }
    }
}
"""


class TestConversionShapes:
    def test_diamond_flattens_to_straight_line(self):
        module, func = _assert_equivalent(DIAMOND_ABS)
        assert not _condbrs(func)
        assert len(func.blocks) == 1
        # Both arms stored to B[i]: the pair merges into one select-fed
        # store, no guard load needed.
        stores = [i for i in func.entry if isinstance(i, Store)]
        assert len(stores) == 1
        assert not any(i.name.startswith("ifc.old")
                       for i in func.entry if isinstance(i, Load))
        assert any(s.name.startswith("ifc.merge") for s in _selects(func))

    def test_triangle_predicates_the_guarded_store(self):
        module, func = _assert_equivalent(HAMMOCK_MAX)
        assert not _condbrs(func)
        # The unpaired store keeps the old value on the skip path:
        # old = load p; store (select c, new, old), p.
        guard_loads = [i for b in func.blocks for i in b.instructions
                       if isinstance(i, Load)
                       and i.name.startswith("ifc.old")]
        assert len(guard_loads) == 1
        assert any(s.name.startswith("ifc.guard") for s in _selects(func))

    def test_nested_diamonds_convert_inner_first(self):
        module, func = _assert_equivalent(NESTED_CLAMP)
        assert not _condbrs(func)
        assert len(func.blocks) == 1
        # Two conditions remain as selects (upper clamp + lower clamp).
        assert len(_selects(func)) >= 2

    def test_mode_off_is_identity(self):
        module, func = _build(DIAMOND_ABS)
        blocks_before = len(func.blocks)
        assert run_ifconvert(func, mode="off") is False
        assert len(func.blocks) == blocks_before

    def test_unknown_mode_rejected(self):
        module, func = _build(DIAMOND_ABS)
        with pytest.raises(ValueError, match="unknown ifconvert mode"):
            run_ifconvert(func, mode="aggressive")
        assert "off" in IFCONVERT_MODES


class TestPhiRewrite:
    def _diamond_with_phi(self) -> tuple[Module, Function]:
        module = Module("m")
        a = module.add_global(GlobalArray("A", I64, 64))
        func = module.add_function(Function("f", [("i", I64)]))
        entry = func.add_block("entry")
        then = func.add_block("then")
        other = func.add_block("else")
        merge = func.add_block("merge")
        b = IRBuilder(entry)
        i = func.argument("i")
        x = b.load(b.gep(a, 0), "x")
        cond = b.icmp("slt", x, b.i64(0), "c")
        b.condbr(cond, then, other)
        b.set_block(then)
        neg = b.sub(b.i64(0), x, "neg")
        b.br(merge)
        b.set_block(other)
        dbl = b.add(x, x, "dbl")
        b.br(merge)
        b.set_block(merge)
        phi = b.phi(I64, "res")
        phi.add_incoming(neg, then)
        phi.add_incoming(dbl, other)
        b.store(phi, b.gep(a, i))
        b.ret()
        return module, func

    def test_phi_becomes_select(self):
        module, func = self._diamond_with_phi()
        assert run_ifconvert(func, mode="on", target=TARGET)
        verify_function(func)
        assert not _condbrs(func)
        assert not [p for blk in func.blocks for p in blk.phis()]
        selects = _selects(func)
        assert len(selects) == 1 and selects[0].name == "res"
        # The select keeps the phi's true/false orientation.
        reference_module, reference = self._diamond_with_phi()
        outcome = compare_runs((reference_module, reference),
                               (module, func), args={"i": 5}, seed=3)
        assert outcome.equivalent, outcome.detail

    def test_converted_ir_round_trips(self):
        module, func = self._diamond_with_phi()
        run_ifconvert(func, mode="on", target=TARGET)
        text = print_module(module)
        reparsed = print_module(parse_module(text))
        assert text == reparsed


class TestSpeculationRules:
    def test_pure_ops_speculate(self):
        module, func = _build(DIAMOND_ABS)
        sub = next(i for b in func.blocks for i in b.instructions
                   if i.opcode == "sub")
        assert is_speculatable(sub)

    def test_division_needs_constant_nonzero_divisor(self):
        module = Module("m")
        func = module.add_function(Function("f", [("i", I64)]))
        b = IRBuilder(func.add_block("entry"))
        by_const = b.sdiv(func.argument("i"), b.i64(4))
        by_zero = b.sdiv(func.argument("i"), b.i64(0))
        by_symbolic = b.sdiv(b.i64(8), func.argument("i"))
        b.ret()
        assert is_speculatable(by_const)
        assert not is_speculatable(by_zero)
        assert not is_speculatable(by_symbolic)

    def test_symbolic_division_declines_but_preserves_semantics(self):
        source = """
long A[64], B[64];
void kernel(long i, long k) {
    if (B[i + 0] < 0) { A[i + 0] = B[i + 0] / (k + 3); }
    else { A[i + 0] = B[i + 0]; }
}
"""
        module, func = _assert_equivalent(source, i=4, k=2)
        assert _condbrs(func)  # declined: divisor is symbolic


class TestLegalityNegatives:
    """The satellite-3 matrix: every illegal region declines with a
    structured remark, an ``ifconvert`` record and a metric bump — and
    never miscompiles."""

    def _run_declining(self, source: str, expected_reason: str, **args):
        sink = ListSink()
        previous = records.set_sink(sink)
        was_publishing = metrics.publishing()
        metrics.set_publishing(True)
        before = metrics.registry().counter("ifconvert.declined").value
        try:
            module, func = _build(source)
            converter_changed = run_ifconvert(func, mode="on",
                                              target=TARGET)
        finally:
            records.set_sink(previous)
            metrics.set_publishing(was_publishing)
        assert not converter_changed
        assert _condbrs(func), "CFG must be left untouched on decline"
        declined = [r for r in sink.records
                    if r["type"] == "ifconvert"
                    and r["event"] == "declined"]
        assert declined, "decline must stream an ifconvert record"
        assert expected_reason in declined[0]["reason"]
        remarks = [r for r in sink.records
                   if r["type"] == "remark"
                   and r.get("category") == "ifconvert"]
        assert remarks and expected_reason in remarks[0]["message"]
        after = metrics.registry().counter("ifconvert.declined").value
        assert after == before + len(declined)
        # ... and the function still computes the original answer.
        _assert_equivalent(source, **args)

    def test_guarded_store_to_unprovable_address(self):
        # The condition reads B, not A: nothing proves A[i] is safe to
        # touch on the path that skipped the store.
        self._run_declining("""
long A[64], B[64];
void kernel(long i) {
    if (B[i + 0] < 0) { A[i + 0] = 7; }
}
""", "guarded store address not provably dereferenceable")

    def test_side_effecting_call_in_arm(self):
        self._run_declining("""
long A[64], B[64];
long bump(long x) {
    A[0] = x;
    return x + 1;
}
void kernel(long i) {
    if (B[i + 0] < 0) { A[i + 1] = bump(B[i + 0]); }
}
""", "side-effecting call in arm")

    def test_cross_path_may_alias_stores(self):
        self._run_declining("""
long A[64], B[64];
void kernel(long i, long k) {
    if (B[i + 0] < 0) { A[i + 0] = 1; } else { A[k + 0] = 2; }
}
""", "cross-path stores may alias", i=4, k=9)

    def test_speculated_load_not_provably_in_bounds(self):
        # The else-arm load A[k] is skipped when the branch takes the
        # true path; k is symbolic, so speculation cannot prove it safe.
        self._run_declining("""
long A[64], B[64], C[64];
void kernel(long i, long k) {
    if (B[i + 0] < 0) { C[i + 0] = 0 - 1; } else { C[i + 0] = A[k + 0]; }
}
""", "speculated load not provably in bounds", i=4, k=9)


class TestCostGate:
    def test_expensive_selects_decline_under_cost_mode(self):
        pricey = TargetCostModel(
            replace(TARGET.desc, scalar_select_cost=50)
        )
        module, func = _build(DIAMOND_ABS)
        assert not run_ifconvert(func, mode="cost", target=pricey)
        assert _condbrs(func)
        # "on" ignores the price and converts anyway.
        module, func = _build(DIAMOND_ABS)
        assert run_ifconvert(func, mode="on", target=pricey)
        assert not _condbrs(func)

    def test_raw_ir_declines_with_cost_reason(self):
        # Before cleanup each arm recomputes the address chain, so the
        # speculated work outweighs the branch savings — the gate says
        # so in the decline reason.
        sink = ListSink()
        previous = records.set_sink(sink)
        try:
            module, func = _build(DIAMOND_ABS)
            assert not run_ifconvert(func, mode="cost", target=TARGET)
        finally:
            records.set_sink(previous)
        declined = [r for r in sink.records
                    if r["type"] == "ifconvert"
                    and r["event"] == "declined"]
        assert declined and "speculation cost" in declined[0]["reason"]

    def test_cleaned_ir_converts_under_cost_mode(self):
        # The pipeline folds/CSEs the per-arm address math before
        # if-conversion runs, which tips the same diamond profitable.
        config = replace(VectorizerConfig.lslp(), ifconvert="cost")
        module, func = _build(DIAMOND_ABS)
        compile_function(func, config, TARGET)
        assert not _condbrs(func)

    def test_decline_remark_reaches_compile_result(self):
        # What `lslp compile --remarks` prints: the pipeline must drain
        # the pass's decline remarks into CompileResult.remarks.
        config = replace(VectorizerConfig.lslp(), ifconvert="on")
        module, func = _build("""
long A[64], B[64];
void kernel(long i, long k) {
    if (B[i + 0] < 0) { A[k + 0] = 7; }
}
""")
        result = compile_function(func, config, TARGET)
        declines = [r for r in result.remarks
                    if r.category == "ifconvert"]
        assert declines
        assert "not provably dereferenceable" in declines[0].message


class TestBranchyKernelsEndToEnd:
    """The acceptance bar: every branchy catalog kernel goes from zero
    vector seeds to a vectorized select tree, with strictly lower
    simulated cycles and bit-identical semantics on both execution
    tiers."""

    @pytest.mark.parametrize("kernel", BRANCHY_KERNELS,
                             ids=lambda k: k.name)
    def test_zero_seeds_without_ifconvert(self, kernel):
        _, func = kernel.build()
        result = compile_function(func, VectorizerConfig.lslp(), TARGET)
        assert result.report.num_vectorized == 0

    @pytest.mark.parametrize("kernel", BRANCHY_KERNELS,
                             ids=lambda k: k.name)
    @pytest.mark.parametrize("mode", ["on", "cost"])
    def test_vectorizes_with_ifconvert(self, kernel, mode):
        baseline_module, baseline = kernel.build()
        compile_function(baseline, VectorizerConfig.lslp(), TARGET)
        base_run, _ = run_on_fresh_memory(baseline_module, baseline,
                                          args=kernel.default_args,
                                          seed=0, target=TARGET)

        config = replace(VectorizerConfig.lslp(), ifconvert=mode)
        module, func = kernel.build()
        result = compile_function(func, config, TARGET)
        assert result.report.num_vectorized >= 1
        assert result.static_cost < 0
        run, _ = run_on_fresh_memory(module, func,
                                     args=kernel.default_args,
                                     seed=0, target=TARGET)
        assert run.cycles < base_run.cycles

    @pytest.mark.parametrize("kernel", BRANCHY_KERNELS,
                             ids=lambda k: k.name)
    def test_compiled_tier_matches_interpreter(self, kernel):
        config = replace(VectorizerConfig.lslp(), ifconvert="on")
        module, func = kernel.build()
        compile_function(func, config, TARGET)
        for mode in ("unrolled", "numpy"):
            outcome = cross_check(module, func, TARGET,
                                  base_args=kernel.default_args,
                                  runs=2, base_seed=7, vector_mode=mode)
            assert outcome.ok, f"{mode}: {outcome.render()}"

    def test_conversion_emits_converted_records(self):
        sink = ListSink()
        previous = records.set_sink(sink)
        try:
            _, func = BRANCHY_KERNELS[0].build()
            run_ifconvert(func, mode="on", target=TARGET)
        finally:
            records.set_sink(previous)
        converted = [r for r in sink.records
                     if r["type"] == "ifconvert"
                     and r["event"] == "converted"]
        assert len(converted) == 4  # one diamond per lane
        assert all(r["shape"] == "diamond" for r in converted)
