"""Integration: every kernel under every configuration must compile,
verify, and be observationally equivalent to the unoptimized reference.
"""

import pytest

from repro.costmodel import expensive_shuffle, scalar_only, sse_like
from repro.interp import compare_runs
from repro.ir import verify_function
from repro.kernels import ALL_KERNELS, EVALUATION_KERNELS
from repro.opt import compile_function
from repro.slp import VectorizerConfig
from repro.experiments.runner import PAPER_CONFIGS, SENSITIVITY_CONFIGS

ALL_CONFIGS = PAPER_CONFIGS + SENSITIVITY_CONFIGS[1:-1]


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("kernel", list(ALL_KERNELS.values()),
                         ids=lambda k: k.name)
class TestEveryKernelEveryConfig:
    def test_compiles_verifies_and_matches_reference(self, kernel, config):
        reference = kernel.build()
        module, func = kernel.build()
        compile_function(func, config)
        verify_function(func)
        outcome = compare_runs(reference, (module, func),
                               args=kernel.default_args)
        assert outcome.equivalent, (
            f"{kernel.name} under {config.name}: {outcome.detail}"
        )


@pytest.mark.parametrize("kernel", EVALUATION_KERNELS,
                         ids=lambda k: k.name)
class TestConfigQualityOrdering:
    """LSLP's accepted static cost is never worse than vanilla SLP's."""

    def test_lslp_never_worse_than_slp(self, kernel):
        _, slp_func = kernel.build()
        slp = compile_function(slp_func, VectorizerConfig.slp())
        _, lslp_func = kernel.build()
        lslp = compile_function(lslp_func, VectorizerConfig.lslp())
        assert lslp.static_cost <= slp.static_cost

    def test_vectorization_never_slows_down_simulated(self, kernel):
        from repro.experiments.runner import measure_kernel

        o3 = measure_kernel(kernel, VectorizerConfig.o3())
        for config in (VectorizerConfig.slp(), VectorizerConfig.lslp()):
            measured = measure_kernel(kernel, config)
            assert measured.cycles <= o3.cycles


class TestAlternativeTargets:
    @pytest.mark.parametrize("kernel", EVALUATION_KERNELS,
                             ids=lambda k: k.name)
    def test_sse_target_still_correct(self, kernel):
        reference = kernel.build()
        module, func = kernel.build()
        compile_function(func, VectorizerConfig.lslp(), sse_like())
        verify_function(func)
        outcome = compare_runs(reference, (module, func),
                               args=kernel.default_args, target=sse_like())
        assert outcome.equivalent, outcome.detail

    def test_scalar_only_target_never_vectorizes(self):
        for kernel in EVALUATION_KERNELS:
            _, func = kernel.build()
            result = compile_function(
                func, VectorizerConfig.lslp(), scalar_only()
            )
            assert result.report.num_vectorized == 0, kernel.name

    def test_expensive_shuffle_reduces_vectorization(self):
        cheap_total = 0
        pricey_total = 0
        for kernel in EVALUATION_KERNELS:
            _, func = kernel.build()
            cheap_total += compile_function(
                func, VectorizerConfig.lslp()
            ).report.num_vectorized
            _, func2 = kernel.build()
            pricey_total += compile_function(
                func2, VectorizerConfig.lslp(), expensive_shuffle()
            ).report.num_vectorized
        assert pricey_total <= cheap_total
