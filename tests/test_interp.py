"""Tests for the IR interpreter, memory image, and cycle accounting."""

import pytest

from repro.interp import (
    ExecutionResult,
    Interpreter,
    InterpreterError,
    MemoryImage,
    Pointer,
)
from repro.ir import (
    Function,
    GlobalArray,
    I64,
    F64,
    IRBuilder,
    Module,
    vector_of,
)
from repro.ir.values import VectorConstant
from tests.conftest import build_kernel


def run_source(source, arrays=None, args=None, entry="kernel"):
    module, func = build_kernel(source, entry)
    memory = MemoryImage(module)
    for name, values in (arrays or {}).items():
        memory.set_array(name, values)
    result = Interpreter(memory).run(func, args or {"i": 0})
    return result, memory


class TestScalarExecution:
    def test_store_load_arithmetic(self):
        _, memory = run_source("""
long A[8], B[8];
void kernel(long i) {
    A[i] = (B[i] << 1) + 3;
}
""", arrays={"B": [5, 0, 0, 0, 0, 0, 0, 0]})
        assert memory.get_array("A")[0] == 13

    def test_argument_indexing(self):
        _, memory = run_source("""
long A[8], B[8];
void kernel(long i) {
    A[i + 1] = B[i] * B[i];
}
""", arrays={"B": [3] * 8}, args={"i": 2})
        assert memory.get_array("A")[3] == 9

    def test_return_value(self):
        result, _ = run_source("""
long A[8];
long kernel(long i) {
    return A[i] + 7;
}
""", arrays={"A": [10] * 8})
        assert result.return_value == 17

    def test_integer_wraps_like_hardware(self):
        _, memory = run_source("""
long A[2], B[2];
void kernel(long i) {
    A[i] = B[i] + B[i];
}
""", arrays={"B": [2**62, 0]})
        assert memory.get_array("A")[0] == -(2**63)

    def test_float_arithmetic(self):
        _, memory = run_source("""
double A[2], B[2];
void kernel(long i) {
    A[i] = B[i] * 2.5;
}
""", arrays={"B": [4.0, 0.0]})
        assert memory.get_array("A")[0] == 10.0

    def test_select_and_cmp(self):
        _, memory = run_source("""
long A[4], B[4];
void kernel(long i) {
    A[i] = B[i] < 5 ? 100 : 200;
}
""", arrays={"B": [3, 0, 0, 0]})
        assert memory.get_array("A")[0] == 100

    def test_missing_argument_raises(self):
        module, func = build_kernel(
            "long A[4];\nvoid kernel(long i) { A[i] = 1; }"
        )
        memory = MemoryImage(module)
        with pytest.raises(InterpreterError, match="missing argument"):
            Interpreter(memory).run(func, {})

    def test_out_of_bounds_raises(self):
        module, func = build_kernel(
            "long A[4];\nvoid kernel(long i) { A[i] = 1; }"
        )
        memory = MemoryImage(module)
        with pytest.raises(InterpreterError, match="out of bounds"):
            Interpreter(memory).run(func, {"i": 10})


class TestVectorExecution:
    def _vector_func(self):
        module = Module("m")
        a = module.add_global(GlobalArray("A", I64, 16))
        b = module.add_global(GlobalArray("B", I64, 16))
        func = module.add_function(Function("k", [("i", I64)]))
        builder = IRBuilder(func.add_block("entry"))
        return module, func, builder, a, b

    def test_vector_load_store(self):
        module, func, builder, a, b = self._vector_func()
        i = func.argument("i")
        vec = builder.vload(builder.gep(b, i), 4)
        builder.store(vec, builder.gep(a, i))
        builder.ret()
        memory = MemoryImage(module)
        memory.set_array("B", list(range(16)))
        Interpreter(memory).run(func, {"i": 2})
        assert memory.get_array("A")[2:6] == [2, 3, 4, 5]

    def test_lanewise_binop_and_constant_vector(self):
        module, func, builder, a, b = self._vector_func()
        i = func.argument("i")
        vec = builder.vload(builder.gep(b, i), 4)
        vc = VectorConstant(vector_of(I64, 4), [10, 20, 30, 40])
        result = builder.add(vec, vc)
        builder.store(result, builder.gep(a, i))
        builder.ret()
        memory = MemoryImage(module)
        memory.set_array("B", [1] * 16)
        Interpreter(memory).run(func, {"i": 0})
        assert memory.get_array("A")[:4] == [11, 21, 31, 41]

    def test_shuffle_insert_extract_splat(self):
        module, func, builder, a, b = self._vector_func()
        i = func.argument("i")
        vec = builder.vload(builder.gep(b, i), 4)
        rev = builder.shufflevector(vec, vec, [3, 2, 1, 0])
        lane2 = builder.extractelement(rev, 2)
        splat = builder.splat(lane2, 4)
        merged = builder.insertelement(splat, builder.i64(99), 0)
        builder.store(merged, builder.gep(a, i))
        builder.ret()
        memory = MemoryImage(module)
        memory.set_array("B", [7, 8, 9, 10])
        Interpreter(memory).run(func, {"i": 0})
        # rev = [10,9,8,7]; lane2 = 8; splat = [8]*4; lane0 -> 99
        assert memory.get_array("A")[:4] == [99, 8, 8, 8]

    def test_vector_cmp_select(self):
        module, func, builder, a, b = self._vector_func()
        i = func.argument("i")
        vec = builder.vload(builder.gep(b, i), 4)
        zero = VectorConstant(vector_of(I64, 4), [5, 5, 5, 5])
        cmp = builder.icmp("slt", vec, zero)
        sel = builder.select(cmp, zero, vec)
        builder.store(sel, builder.gep(a, i))
        builder.ret()
        memory = MemoryImage(module)
        memory.set_array("B", [1, 9, 2, 8])
        Interpreter(memory).run(func, {"i": 0})
        assert memory.get_array("A")[:4] == [5, 9, 5, 8]

    def test_vector_store_bounds_checked(self):
        module, func, builder, a, b = self._vector_func()
        i = func.argument("i")
        vec = builder.vload(builder.gep(b, i), 4)
        builder.store(vec, builder.gep(a, i))
        builder.ret()
        memory = MemoryImage(module)
        with pytest.raises(InterpreterError, match="out of bounds"):
            Interpreter(memory).run(func, {"i": 14})


class TestCycleAccounting:
    def test_cycles_counted(self):
        result, _ = run_source("""
long A[4], B[4];
void kernel(long i) {
    A[i] = B[i] + 1;
}
""")
        # gep(0) + load(1) + add(1) + gep(0) + store(1) + ret(0) = 3
        assert result.cycles == 3
        assert result.instructions_retired == 6

    def test_opcode_counts(self):
        result, _ = run_source("""
long A[4], B[4];
void kernel(long i) {
    A[i] = B[i] + B[i + 1];
}
""")
        assert result.opcode_counts["load"] == 2
        assert result.opcode_counts["store"] == 1

    def test_vector_code_is_cheaper(self):
        module = Module("m")
        a = module.add_global(GlobalArray("A", I64, 16))
        b = module.add_global(GlobalArray("B", I64, 16))
        func = module.add_function(Function("k", [("i", I64)]))
        builder = IRBuilder(func.add_block("entry"))
        i = func.argument("i")
        vec = builder.vload(builder.gep(b, i), 4)
        builder.store(vec, builder.gep(a, i))
        builder.ret()
        memory = MemoryImage(module)
        vector_cycles = Interpreter(memory).run(func, {"i": 0}).cycles
        assert vector_cycles == 2  # one vload + one vstore


class TestMemoryImage:
    def test_clone_is_independent(self):
        module, _ = build_kernel("long A[4];\nvoid kernel(long i) { A[i] = 1; }")
        memory = MemoryImage(module)
        memory.set_array("A", [1, 2, 3, 4])
        copy = memory.clone()
        copy.set_array("A", [9, 9, 9, 9])
        assert memory.get_array("A") == [1, 2, 3, 4]

    def test_same_contents(self):
        module, _ = build_kernel("long A[4];\nvoid kernel(long i) { A[i] = 1; }")
        m1 = MemoryImage(module)
        m2 = m1.clone()
        assert m1.same_contents(m2)
        m2.set_array("A", [0, 0, 0, 1])
        assert not m1.same_contents(m2)

    def test_float_tolerance(self):
        module, _ = build_kernel(
            "double X[2];\nvoid kernel(long i) { X[i] = 1.0; }"
        )
        m1 = MemoryImage(module)
        m2 = m1.clone()
        m1.set_array("X", [1.0, 0.0])
        m2.set_array("X", [1.0 + 1e-13, 0.0])
        assert m1.same_contents(m2)

    def test_randomize_is_deterministic(self):
        module, _ = build_kernel("long A[4];\nvoid kernel(long i) { A[i] = 1; }")
        m1 = MemoryImage(module)
        m2 = MemoryImage(module)
        m1.randomize(seed=42)
        m2.randomize(seed=42)
        assert m1.same_contents(m2)
        m2.randomize(seed=43)
        assert not m1.same_contents(m2)

    def test_set_array_size_check(self):
        module, _ = build_kernel("long A[4];\nvoid kernel(long i) { A[i] = 1; }")
        memory = MemoryImage(module)
        with pytest.raises(ValueError):
            memory.set_array("A", [0] * 9)

    def test_pointer_advanced(self):
        module, _ = build_kernel("long A[4];\nvoid kernel(long i) { A[i] = 1; }")
        memory = MemoryImage(module)
        ptr = memory.pointer_to("A", 1)
        assert ptr.advanced(2).offset == 3
        assert ptr.advanced(2).buffer is ptr.buffer


class TestTraceHook:
    def test_on_retire_sees_every_instruction(self):
        module, func = build_kernel("""
long A[8], B[8];
void kernel(long i) {
    A[i] = B[i] + 1;
}
""")
        memory = MemoryImage(module)
        events = []
        result = Interpreter(memory).run(
            func, {"i": 0}, on_retire=lambda inst, value: events.append(
                (inst.opcode, value)
            )
        )
        assert len(events) == result.instructions_retired
        opcodes = [opcode for opcode, _ in events]
        assert opcodes == ["gep", "load", "add", "gep", "store", "ret"]
        assert events[2][1] == 1  # 0 + 1

    def test_on_retire_reports_branch_direction(self):
        module, func = build_kernel("""
long A[8];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[j] = j;
    }
}
""")
        memory = MemoryImage(module)
        events = []
        Interpreter(memory).run(
            func, {"n": 2},
            on_retire=lambda inst, value: events.append(
                (inst.opcode, value)
            ),
        )
        condbr_values = [v for op, v in events if op == "condbr"]
        assert condbr_values == [True, True, False]
