"""Tests for basic blocks, functions and modules."""

import pytest

from repro.ir import (
    BinaryOperator,
    Constant,
    Function,
    GlobalArray,
    I64,
    IRBuilder,
    Module,
    Ret,
)


def make_func():
    func = Function("f", [("i", I64)])
    block = func.add_block("entry")
    return func, block


class TestBasicBlock:
    def test_append_sets_parent(self):
        func, block = make_func()
        inst = BinaryOperator("add", func.argument("i"), Constant(I64, 1))
        block.append(inst)
        assert inst.parent is block
        assert len(block) == 1

    def test_double_insert_rejected(self):
        func, block = make_func()
        inst = BinaryOperator("add", func.argument("i"), Constant(I64, 1))
        block.append(inst)
        with pytest.raises(ValueError):
            block.append(inst)

    def test_insert_before_and_after(self):
        func, block = make_func()
        i = func.argument("i")
        first = block.append(BinaryOperator("add", i, Constant(I64, 1)))
        third = block.append(BinaryOperator("add", i, Constant(I64, 3)))
        second = BinaryOperator("add", i, Constant(I64, 2))
        block.insert_before(third, second)
        fourth = BinaryOperator("add", i, Constant(I64, 4))
        block.insert_after(third, fourth)
        assert block.instructions == [first, second, third, fourth]

    def test_index_of_and_order(self):
        func, block = make_func()
        i = func.argument("i")
        insts = [
            block.append(BinaryOperator("add", i, Constant(I64, k)))
            for k in range(5)
        ]
        for pos, inst in enumerate(insts):
            assert block.index_of(inst) == pos
        assert block.comes_before(insts[1], insts[3])
        assert not block.comes_before(insts[3], insts[1])

    def test_index_cache_invalidation(self):
        func, block = make_func()
        i = func.argument("i")
        a = block.append(BinaryOperator("add", i, Constant(I64, 1)))
        b = block.append(BinaryOperator("add", i, Constant(I64, 2)))
        assert block.index_of(b) == 1
        block.remove(a)
        assert block.index_of(b) == 0

    def test_index_of_foreign_instruction(self):
        func, block = make_func()
        other = BinaryOperator("add", func.argument("i"), Constant(I64, 1))
        with pytest.raises(ValueError):
            block.index_of(other)

    def test_move_before(self):
        func, block = make_func()
        i = func.argument("i")
        a = block.append(BinaryOperator("add", i, Constant(I64, 1)))
        b = block.append(BinaryOperator("add", i, Constant(I64, 2)))
        b.move_before(a)
        assert block.instructions == [b, a]

    def test_terminator(self):
        func, block = make_func()
        assert block.terminator is None
        ret = block.append(Ret())
        assert block.terminator is ret

    def test_erase_from_parent(self):
        func, block = make_func()
        i = func.argument("i")
        inst = block.append(BinaryOperator("add", i, Constant(I64, 1)))
        inst.erase_from_parent()
        assert len(block) == 0
        assert i.num_uses == 0

    def test_erase_used_instruction_rejected(self):
        func, block = make_func()
        i = func.argument("i")
        a = block.append(BinaryOperator("add", i, Constant(I64, 1)))
        block.append(BinaryOperator("add", a, Constant(I64, 2)))
        with pytest.raises(ValueError):
            a.erase_from_parent()


class TestFunction:
    def test_arguments(self):
        func = Function("f", [("i", I64), ("j", I64)])
        assert [a.name for a in func.arguments] == ["i", "j"]
        assert func.argument("j").type is I64
        with pytest.raises(KeyError):
            func.argument("k")

    def test_unique_names(self):
        func = Function("f", [])
        assert func.unique_name("t") == "t"
        assert func.unique_name("t") == "t1"
        assert func.unique_name("t") == "t2"
        assert func.unique_name("u") == "u"

    def test_entry_requires_block(self):
        func = Function("f", [])
        with pytest.raises(ValueError):
            _ = func.entry
        block = func.add_block("entry")
        assert func.entry is block

    def test_instructions_iterates_in_order(self):
        func, block = make_func()
        i = func.argument("i")
        a = block.append(BinaryOperator("add", i, Constant(I64, 1)))
        b = block.append(BinaryOperator("add", a, Constant(I64, 2)))
        assert list(func.instructions()) == [a, b]


class TestModule:
    def test_globals(self):
        module = Module("m")
        array = module.add_global(GlobalArray("A", I64, 4))
        assert module.get_global("A") is array
        with pytest.raises(ValueError):
            module.add_global(GlobalArray("A", I64, 4))
        with pytest.raises(KeyError):
            module.get_global("B")

    def test_functions(self):
        module = Module("m")
        func = module.add_function(Function("f", []))
        assert module.get_function("f") is func
        with pytest.raises(ValueError):
            module.add_function(Function("f", []))
        with pytest.raises(KeyError):
            module.get_function("g")


class TestIRBuilder:
    def test_auto_naming(self):
        func, block = make_func()
        builder = IRBuilder(block)
        add = builder.add(func.argument("i"), builder.i64(1))
        assert add.name == "add"
        add2 = builder.add(add, builder.i64(2))
        assert add2.name == "add1"

    def test_position_before(self):
        func, block = make_func()
        builder = IRBuilder(block)
        i = func.argument("i")
        a = builder.add(i, builder.i64(1))
        b = builder.add(i, builder.i64(2))
        builder.position_before(b)
        c = builder.add(i, builder.i64(3))
        assert block.instructions == [a, c, b]

    def test_build_vector_emits_insert_chain(self):
        func, block = make_func()
        builder = IRBuilder(block)
        i = func.argument("i")
        a = builder.add(i, builder.i64(1))
        b = builder.add(i, builder.i64(2))
        vec = builder.build_vector([a, b])
        assert vec.type.is_vector
        assert vec.type.count == 2
        assert vec.opcode == "insertelement"

    def test_build_vector_rejects_empty(self):
        func, block = make_func()
        builder = IRBuilder(block)
        with pytest.raises(ValueError):
            builder.build_vector([])

    def test_vload(self):
        func, block = make_func()
        module = Module("m")
        array = module.add_global(GlobalArray("A", I64, 8))
        builder = IRBuilder(block)
        ptr = builder.gep(array, func.argument("i"))
        load = builder.vload(ptr, 4)
        assert load.type.is_vector
        assert load.type.count == 4
