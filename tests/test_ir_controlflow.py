"""Tests for branches, phis, CFG printing/parsing, and the verifier's
control-flow rules."""

import pytest

from repro.ir import (
    Br,
    CondBr,
    Constant,
    Function,
    GlobalArray,
    I1,
    I64,
    IRBuilder,
    Module,
    parse_module,
    Phi,
    print_function,
    print_module,
    VerificationError,
    verify_function,
)


def diamond():
    """entry -> (then|else) -> join, with a phi at the join."""
    func = Function("f", [("c", I1), ("x", I64), ("y", I64)])
    entry = func.add_block("entry")
    then_b = func.add_block("then")
    else_b = func.add_block("else")
    join = func.add_block("join")
    b = IRBuilder(entry)
    b.condbr(func.argument("c"), then_b, else_b)
    b.set_block(then_b)
    tx = b.add(func.argument("x"), b.i64(1))
    b.br(join)
    b.set_block(else_b)
    ty = b.add(func.argument("y"), b.i64(2))
    b.br(join)
    b.set_block(join)
    phi = b.phi(I64, "merged")
    phi.add_incoming(tx, then_b)
    phi.add_incoming(ty, else_b)
    b.ret(phi)
    func.return_type = I64
    return func, phi


class TestConstruction:
    def test_br_successors(self):
        func = Function("f", [])
        a = func.add_block("a")
        b = func.add_block("b")
        br = Br(b)
        a.append(br)
        assert a.successors() == [b]
        assert br.is_terminator

    def test_condbr_successors_and_type_check(self):
        func = Function("f", [("c", I1)])
        a = func.add_block("a")
        t = func.add_block("t")
        e = func.add_block("e")
        cb = CondBr(func.argument("c"), t, e)
        a.append(cb)
        assert a.successors() == [t, e]
        with pytest.raises(TypeError):
            CondBr(Constant(I64, 1), t, e)

    def test_replace_successor(self):
        func = Function("f", [("c", I1)])
        a, t, e, n = (func.add_block(x) for x in "aten")
        cb = CondBr(func.argument("c"), t, e)
        cb.replace_successor(t, n)
        assert cb.on_true is n
        br = Br(t)
        br.replace_successor(t, n)
        assert br.target is n

    def test_phi_incoming(self):
        func, phi = diamond()
        assert len(phi.incoming()) == 2
        then_b = func.blocks[1]
        value = phi.incoming_for(then_b)
        assert value.opcode == "add"
        with pytest.raises(KeyError):
            phi.incoming_for(func.blocks[0])

    def test_phi_type_checked(self):
        func = Function("f", [("x", I64)])
        entry = func.add_block("entry")
        phi = Phi(I64)
        with pytest.raises(TypeError):
            phi.add_incoming(Constant(I1, 1), entry)

    def test_phi_remove_incoming(self):
        func, phi = diamond()
        then_b = func.blocks[1]
        tx = phi.incoming_for(then_b)
        phi.remove_incoming(then_b)
        assert len(phi.incoming()) == 1
        assert all(use.user is not phi for use in tx.uses)
        with pytest.raises(KeyError):
            phi.remove_incoming(then_b)

    def test_block_phi_helpers(self):
        func, phi = diamond()
        join = func.blocks[3]
        assert join.phis() == [phi]
        assert join.first_non_phi().opcode == "ret"


class TestPrintParseRoundTrip:
    def test_diamond_round_trip(self):
        func, _ = diamond()
        verify_function(func)
        module = Module("m")
        module.functions[func.name] = func
        text = print_module(module)
        parsed = parse_module(text)
        assert print_module(parsed) == text

    def test_loop_round_trip(self):
        text = """\
module "m"

@A = global [64 x i64]

define void @loop(i64 %n) {
entry:
  br label %header
header:
  %j = phi i64 [ 0, %entry ], [ %j.next, %body ]
  %cmp = icmp slt i64 %j, i64 %n
  condbr i1 %cmp, label %body, label %exit
body:
  %ptr = gep i64* @A, i64 %j
  store i64 %j, i64* %ptr
  %j.next = add i64 %j, i64 1
  br label %header
exit:
  ret void
}
"""
        module = parse_module(text)
        for func in module.functions.values():
            verify_function(func)
        assert print_module(module) == text

    def test_forward_label_reference(self):
        text = """
define void @f(i1 %c) {
entry:
  condbr i1 %c, label %later, label %now
now:
  br label %later
later:
  ret void
}
"""
        module = parse_module(text)
        verify_function(module.get_function("f"))

    def test_unknown_label_rejected(self):
        text = """
define void @f() {
entry:
  br label %ghost
}
"""
        from repro.ir import IRParseError

        with pytest.raises(IRParseError, match="unknown label"):
            parse_module(text)


class TestVerifierCFG:
    def test_diamond_verifies(self):
        func, _ = diamond()
        verify_function(func)

    def test_missing_terminator_detected(self):
        func = Function("f", [])
        a = func.add_block("a")
        b = func.add_block("b")
        IRBuilder(b).ret()
        a.append(Br(b))
        a.remove(a.instructions[0])
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(func)

    def test_phi_not_at_head_detected(self):
        func, phi = diamond()
        join = func.blocks[3]
        join.remove(phi)
        ret = join.instructions[-1]
        # put a non-phi instruction first, then the phi: illegal
        builder = IRBuilder(join)
        builder.position_before(ret)
        builder.add(func.argument("x"), builder.i64(3))
        join.insert_before(ret, phi)
        with pytest.raises(VerificationError):
            verify_function(func)

    def test_phi_edge_mismatch_detected(self):
        func, phi = diamond()
        then_b = func.blocks[1]
        phi.remove_incoming(then_b)
        with pytest.raises(VerificationError, match="predecessors"):
            verify_function(func)

    def test_cross_block_dominance_ok(self):
        func = Function("f", [("x", I64)])
        a = func.add_block("a")
        b_blk = func.add_block("b")
        builder = IRBuilder(a)
        v = builder.add(func.argument("x"), builder.i64(1))
        builder.br(b_blk)
        builder.set_block(b_blk)
        builder.add(v, builder.i64(2))
        builder.ret()
        verify_function(func)

    def test_cross_block_dominance_violation_detected(self):
        func = Function("f", [("c", I1), ("x", I64)])
        entry = func.add_block("entry")
        left = func.add_block("left")
        right = func.add_block("right")
        join = func.add_block("join")
        builder = IRBuilder(entry)
        builder.condbr(func.argument("c"), left, right)
        builder.set_block(left)
        v = builder.add(func.argument("x"), builder.i64(1))
        builder.br(join)
        builder.set_block(right)
        builder.br(join)
        builder.set_block(join)
        builder.add(v, builder.i64(2))  # v does not dominate join
        builder.ret()
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(func)

    def test_branch_outside_function_detected(self):
        func = Function("f", [])
        other = Function("g", [])
        foreign = other.add_block("foreign")
        entry = func.add_block("entry")
        entry.append(Br(foreign))
        with pytest.raises(VerificationError, match="outside"):
            verify_function(func)

    def test_unreachable_code_not_held_to_dominance(self):
        func = Function("f", [("x", I64)])
        entry = func.add_block("entry")
        dead = func.add_block("dead")
        builder = IRBuilder(entry)
        builder.ret()
        builder.set_block(dead)
        v = builder.add(func.argument("x"), builder.i64(1))
        builder.add(v, builder.i64(2))
        builder.ret()
        verify_function(func)  # must not raise
