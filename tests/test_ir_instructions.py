"""Tests for instruction construction, typing rules and metadata."""

import pytest

from repro.ir import (
    Argument,
    BinaryOperator,
    Cmp,
    COMMUTATIVE_OPCODES,
    Constant,
    ExtractElement,
    F64,
    GetElementPtr,
    GlobalArray,
    I1,
    I32,
    I64,
    InsertElement,
    Load,
    Ret,
    Select,
    ShuffleVector,
    Splat,
    Store,
    UnaryOperator,
    UndefVector,
    binary_opcode_info,
    vector_of,
)


def arg(ty=I64, name="x"):
    return Argument(ty, name)


class TestOpcodeMetadata:
    def test_commutative_set(self):
        assert "add" in COMMUTATIVE_OPCODES
        assert "mul" in COMMUTATIVE_OPCODES
        assert "and" in COMMUTATIVE_OPCODES
        assert "fadd" in COMMUTATIVE_OPCODES
        assert "sub" not in COMMUTATIVE_OPCODES
        assert "shl" not in COMMUTATIVE_OPCODES
        assert "fdiv" not in COMMUTATIVE_OPCODES

    def test_info_lookup(self):
        assert binary_opcode_info("add").commutative
        assert binary_opcode_info("sdiv").is_division
        assert binary_opcode_info("shl").is_shift
        assert binary_opcode_info("fmul").is_float

    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            binary_opcode_info("frobnicate")


class TestBinaryOperator:
    def test_result_type_matches_operands(self):
        add = BinaryOperator("add", arg(), arg(I64, "y"))
        assert add.type is I64

    def test_mismatched_types_rejected(self):
        with pytest.raises(TypeError):
            BinaryOperator("add", arg(I64), arg(I32, "y"))

    def test_float_opcode_on_ints_rejected(self):
        with pytest.raises(TypeError):
            BinaryOperator("fadd", arg(I64), arg(I64, "y"))

    def test_int_opcode_on_floats_rejected(self):
        with pytest.raises(TypeError):
            BinaryOperator("add", arg(F64), arg(F64, "y"))

    def test_vector_binop(self):
        vec = vector_of(I64, 4)
        add = BinaryOperator("add", arg(vec), arg(vec, "y"))
        assert add.type is vec

    def test_is_commutative_property(self):
        assert BinaryOperator("xor", arg(), arg(I64, "y")).is_commutative
        assert not BinaryOperator("sub", arg(), arg(I64, "y")).is_commutative

    def test_swap_non_commutative_rejected(self):
        sub = BinaryOperator("sub", arg(), arg(I64, "y"))
        with pytest.raises(ValueError):
            sub.swap_operands()


class TestUnaryOperator:
    def test_fneg_requires_float(self):
        assert UnaryOperator("fneg", arg(F64)).type is F64
        with pytest.raises(TypeError):
            UnaryOperator("fneg", arg(I64))

    def test_not_requires_integer(self):
        assert UnaryOperator("not", arg(I64)).type is I64
        with pytest.raises(TypeError):
            UnaryOperator("not", arg(F64))

    def test_unknown_unary(self):
        with pytest.raises(ValueError):
            UnaryOperator("sqrt", arg(F64))


class TestCmpSelect:
    def test_icmp_yields_i1(self):
        cmp = Cmp("icmp", "slt", arg(), arg(I64, "y"))
        assert cmp.type is I1

    def test_vector_icmp_yields_i1_vector(self):
        vec = vector_of(I64, 4)
        cmp = Cmp("icmp", "eq", arg(vec), arg(vec, "y"))
        assert cmp.type is vector_of(I1, 4)

    def test_fcmp_predicates_checked(self):
        with pytest.raises(ValueError):
            Cmp("fcmp", "slt", arg(F64), arg(F64, "y"))

    def test_icmp_on_floats_rejected(self):
        with pytest.raises(TypeError):
            Cmp("icmp", "slt", arg(F64), arg(F64, "y"))

    def test_select_types(self):
        cond = Cmp("icmp", "eq", arg(), arg(I64, "y"))
        sel = Select(cond, arg(I64, "a"), arg(I64, "b"))
        assert sel.type is I64

    def test_select_arm_mismatch(self):
        cond = Cmp("icmp", "eq", arg(), arg(I64, "y"))
        with pytest.raises(TypeError):
            Select(cond, arg(I64, "a"), arg(I32, "b"))

    def test_select_condition_type_checked(self):
        with pytest.raises(TypeError):
            Select(arg(I64, "c"), arg(I64, "a"), arg(I64, "b"))


class TestMemory:
    def test_gep_types(self):
        array = GlobalArray("A", I64, 8)
        gep = GetElementPtr(array, Constant(I64, 2))
        assert gep.type is array.type

    def test_gep_needs_pointer_base(self):
        with pytest.raises(TypeError):
            GetElementPtr(arg(I64), Constant(I64, 0))

    def test_gep_needs_integer_index(self):
        array = GlobalArray("A", I64, 8)
        with pytest.raises(TypeError):
            GetElementPtr(array, arg(F64))

    def test_scalar_load(self):
        array = GlobalArray("A", I64, 8)
        load = Load(I64, array)
        assert load.type is I64
        assert not load.is_vector_load

    def test_vector_load(self):
        array = GlobalArray("A", I64, 8)
        load = Load(vector_of(I64, 4), array)
        assert load.is_vector_load

    def test_load_element_mismatch(self):
        array = GlobalArray("A", I64, 8)
        with pytest.raises(TypeError):
            Load(I32, array)
        with pytest.raises(TypeError):
            Load(vector_of(I32, 4), array)

    def test_store_is_void(self):
        array = GlobalArray("A", I64, 8)
        store = Store(arg(I64), array)
        assert store.type.is_void
        assert store.has_side_effects

    def test_vector_store(self):
        array = GlobalArray("A", I64, 8)
        store = Store(arg(vector_of(I64, 2), "v"), array)
        assert store.is_vector_store

    def test_memory_classification(self):
        array = GlobalArray("A", I64, 8)
        assert Load(I64, array).may_read_memory
        assert Store(arg(I64), array).may_write_memory
        assert not Load(I64, array).may_write_memory


class TestVectorOps:
    def setup_method(self):
        self.vec_ty = vector_of(I64, 4)
        self.vec = arg(self.vec_ty, "v")

    def test_insertelement(self):
        ins = InsertElement(self.vec, arg(I64, "s"), Constant(I32, 1))
        assert ins.type is self.vec_ty
        assert ins.lane == 1

    def test_insertelement_lane_bounds(self):
        with pytest.raises(ValueError):
            InsertElement(self.vec, arg(I64, "s"), Constant(I32, 4))

    def test_insertelement_element_type_checked(self):
        with pytest.raises(TypeError):
            InsertElement(self.vec, arg(F64, "s"), Constant(I32, 0))

    def test_extractelement(self):
        ext = ExtractElement(self.vec, Constant(I32, 3))
        assert ext.type is I64
        assert ext.lane == 3

    def test_extractelement_bounds(self):
        with pytest.raises(ValueError):
            ExtractElement(self.vec, Constant(I32, 9))

    def test_shuffle(self):
        other = arg(self.vec_ty, "w")
        shuf = ShuffleVector(self.vec, other, (7, 6, 5, 4))
        assert shuf.type is self.vec_ty
        assert shuf.mask == (7, 6, 5, 4)

    def test_shuffle_can_change_width(self):
        other = arg(self.vec_ty, "w")
        shuf = ShuffleVector(self.vec, other, (0, 1))
        assert shuf.type is vector_of(I64, 2)

    def test_shuffle_mask_bounds(self):
        other = arg(self.vec_ty, "w")
        with pytest.raises(ValueError):
            ShuffleVector(self.vec, other, (0, 8, 1, 2))

    def test_splat(self):
        splat = Splat(arg(I64, "s"), 4)
        assert splat.type is self.vec_ty

    def test_splat_needs_scalar(self):
        with pytest.raises(TypeError):
            Splat(self.vec, 4)

    def test_undef_vector(self):
        undef = UndefVector(self.vec_ty)
        assert undef.short_name() == "undef"


class TestRet:
    def test_void_ret(self):
        ret = Ret()
        assert ret.return_value is None
        assert ret.is_terminator

    def test_value_ret(self):
        x = arg()
        ret = Ret(x)
        assert ret.return_value is x
