"""Printer/parser round-trip and error tests."""

import pytest

from repro.ir import (
    Function,
    GlobalArray,
    I64,
    F64,
    IRBuilder,
    IRParseError,
    Module,
    parse_module,
    print_function,
    print_instruction,
    print_module,
    verify_module,
)
from repro.ir.values import VectorConstant
from repro.ir.types import vector_of


def roundtrip(module: Module) -> Module:
    text = print_module(module)
    parsed = parse_module(text)
    verify_module(parsed)
    assert print_module(parsed) == text
    return parsed


def test_roundtrip_arithmetic_kernel():
    module = Module("m")
    a = module.add_global(GlobalArray("A", I64, 16))
    func = module.add_function(Function("k", [("i", I64)]))
    builder = IRBuilder(func.add_block("entry"))
    i = func.argument("i")
    ptr = builder.gep(a, i)
    load = builder.load(ptr)
    shl = builder.shl(load, builder.i64(2))
    xor = builder.xor(shl, builder.i64(-1))
    builder.store(xor, ptr)
    builder.ret()
    roundtrip(module)


def test_roundtrip_all_binops():
    module = Module("m")
    func = module.add_function(Function("k", [("x", I64), ("y", I64)]))
    builder = IRBuilder(func.add_block("entry"))
    x, y = func.arguments
    for opcode in ("add", "sub", "mul", "sdiv", "srem", "and", "or",
                   "xor", "shl", "lshr", "ashr", "smin", "smax"):
        builder.binop(opcode, x, y)
    builder.ret()
    roundtrip(module)


def test_roundtrip_float_ops():
    module = Module("m")
    func = module.add_function(Function("k", [("x", F64), ("y", F64)],
                                        F64))
    builder = IRBuilder(func.add_block("entry"))
    x, y = func.arguments
    mul = builder.fmul(x, y)
    neg = builder.fneg(mul)
    cmp = builder.fcmp("olt", neg, y)
    sel = builder.select(cmp, neg, x)
    builder.ret(sel)
    roundtrip(module)


def test_roundtrip_vector_ops():
    module = Module("m")
    a = module.add_global(GlobalArray("A", I64, 16))
    func = module.add_function(Function("k", [("i", I64)]))
    builder = IRBuilder(func.add_block("entry"))
    ptr = builder.gep(a, func.argument("i"))
    vec = builder.vload(ptr, 4)
    shuf = builder.shufflevector(vec, vec, [3, 2, 1, 0])
    ext = builder.extractelement(shuf, 2)
    splat = builder.splat(ext, 4)
    added = builder.add(splat, vec)
    builder.store(added, ptr)
    builder.ret()
    roundtrip(module)


def test_roundtrip_vector_constant():
    module = Module("m")
    a = module.add_global(GlobalArray("A", I64, 16))
    func = module.add_function(Function("k", [("i", I64)]))
    builder = IRBuilder(func.add_block("entry"))
    ptr = builder.gep(a, func.argument("i"))
    vec = builder.vload(ptr, 2)
    vc = VectorConstant(vector_of(I64, 2), [1, 3])
    added = builder.add(vec, vc)
    builder.store(added, ptr)
    builder.ret()
    text = print_module(module)
    assert "<2 x i64> <1, 3>" in text
    roundtrip(module)


def test_roundtrip_float_literals():
    module = Module("m")
    func = module.add_function(Function("k", [("x", F64)], F64))
    builder = IRBuilder(func.add_block("entry"))
    v = builder.fmul(func.argument("x"), builder.const(F64, 2.5))
    builder.ret(v)
    roundtrip(module)


def test_print_instruction_forms():
    module = Module("m")
    a = module.add_global(GlobalArray("A", I64, 16))
    func = module.add_function(Function("k", [("i", I64)]))
    builder = IRBuilder(func.add_block("entry"))
    i = func.argument("i")
    ptr = builder.gep(a, i)
    load = builder.load(ptr)
    assert print_instruction(ptr) == "%ptr = gep i64* @A, i64 %i"
    assert print_instruction(load) == "%ld = load i64, i64* %ptr"
    store = builder.store(load, ptr)
    assert print_instruction(store) == "store i64 %ld, i64* %ptr"
    cmp = builder.icmp("slt", load, builder.i64(3))
    assert print_instruction(cmp) == "%cmp = icmp slt i64 %ld, i64 3"


def test_parse_errors_have_line_numbers():
    bad = 'module "m"\n\n@A = global [x i64]\n'
    with pytest.raises(IRParseError) as info:
        parse_module(bad)
    assert info.value.line_no == 3


def test_parse_rejects_undefined_value():
    text = """
define void @k(i64 %i) {
entry:
  %a = add i64 %i, i64 %ghost
  ret void
}
"""
    with pytest.raises(IRParseError, match="undefined value"):
        parse_module(text)


def test_parse_rejects_type_mismatch():
    text = """
define void @k(i64 %i) {
entry:
  %a = add i64 %i, i64 1
  %b = add i32 %a, i32 1
  ret void
}
"""
    with pytest.raises(IRParseError):
        parse_module(text)


def test_parse_rejects_unterminated_function():
    text = 'define void @k() {\nentry:\n  ret void\n'
    with pytest.raises(IRParseError, match="unterminated"):
        parse_module(text)


def test_parse_comments_and_blank_lines():
    text = """
module "m"

; a full-line comment
@A = global [4 x i64]

define void @k(i64 %i) {  ; trailing comment is not allowed on define
entry:
  ret void  ; comment
}
"""
    # the define line has a comment *after* the brace, which the strip
    # removes, so this parses
    module = parse_module(text)
    assert "A" in module.globals


def test_function_print_shape():
    module = Module("m")
    func = module.add_function(Function("k", [("i", I64)]))
    builder = IRBuilder(func.add_block("entry"))
    builder.ret()
    text = print_function(func)
    assert text.startswith("define void @k(i64 %i) {")
    assert text.endswith("}")
    assert "entry:" in text
