"""Tests for the IR type system."""

import pytest

from repro.ir import (
    F32,
    F64,
    FloatType,
    I1,
    I32,
    I64,
    IntType,
    PointerType,
    VOID,
    VectorType,
    parse_type,
    scalar_of,
    vector_of,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(64) is IntType(64)
        assert IntType(64) is I64

    def test_float_types_are_interned(self):
        assert FloatType(32) is F32

    def test_pointer_types_are_interned(self):
        assert PointerType(I64) is PointerType(I64)

    def test_vector_types_are_interned(self):
        assert VectorType(I64, 4) is VectorType(I64, 4)

    def test_distinct_types_differ(self):
        assert IntType(32) is not IntType(64)
        assert VectorType(I64, 2) is not VectorType(I64, 4)
        assert PointerType(I64) is not PointerType(I32)


class TestSizes:
    def test_integer_bits(self):
        assert I64.size_bits() == 64
        assert I1.size_bits() == 1

    def test_integer_bytes_round_up(self):
        assert I1.size_bytes() == 1
        assert IntType(9).size_bytes() == 2

    def test_vector_size(self):
        assert VectorType(I64, 4).size_bits() == 256
        assert VectorType(F32, 8).size_bits() == 256

    def test_pointer_size_is_64(self):
        assert PointerType(F64).size_bits() == 64

    def test_void_size(self):
        assert VOID.size_bits() == 0


class TestPredicates:
    def test_is_scalar(self):
        assert I64.is_scalar
        assert F32.is_scalar
        assert not VOID.is_scalar
        assert not PointerType(I64).is_scalar
        assert not VectorType(I64, 2).is_scalar

    def test_is_vector(self):
        assert VectorType(I64, 2).is_vector
        assert not I64.is_vector

    def test_is_pointer(self):
        assert PointerType(I64).is_pointer
        assert not I64.is_pointer


class TestConstruction:
    def test_vector_of_scalar(self):
        assert vector_of(I64, 4) is VectorType(I64, 4)

    def test_vector_of_vector_rejected(self):
        with pytest.raises(ValueError):
            vector_of(VectorType(I64, 2), 2)

    def test_vector_needs_two_lanes(self):
        with pytest.raises(ValueError):
            VectorType(I64, 1)

    def test_vector_of_pointer_rejected(self):
        with pytest.raises(ValueError):
            VectorType(PointerType(I64), 2)

    def test_pointer_to_void_rejected(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_negative_int_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)

    def test_odd_float_width_rejected(self):
        with pytest.raises(ValueError):
            FloatType(16)

    def test_scalar_of(self):
        assert scalar_of(VectorType(I64, 4)) is I64
        assert scalar_of(I64) is I64


class TestParseAndPrint:
    @pytest.mark.parametrize("text,expected", [
        ("i64", I64),
        ("i32", I32),
        ("f64", F64),
        ("void", VOID),
        ("i64*", PointerType(I64)),
        ("f32*", PointerType(F32)),
        ("<4 x i64>", VectorType(I64, 4)),
        ("<2 x f32>", VectorType(F32, 2)),
        ("<8 x i32>*", PointerType(VectorType(I32, 8))),
    ])
    def test_parse(self, text, expected):
        assert parse_type(text) is expected

    @pytest.mark.parametrize("ty", [
        I64, F32, VOID, PointerType(I64), VectorType(I64, 4),
        PointerType(VectorType(F64, 2)),
    ])
    def test_round_trip(self, ty):
        assert parse_type(str(ty)) is ty

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_type("banana")
