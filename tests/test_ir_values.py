"""Tests for values, constants and use-def chains."""

import pytest

from repro.ir import (
    Argument,
    BinaryOperator,
    Constant,
    GlobalArray,
    I8,
    I64,
    F64,
    constants_equal,
    vector_of,
)
from repro.ir.values import VectorConstant


class TestConstants:
    def test_int_constant_value(self):
        assert Constant(I64, 42).value == 42

    def test_int_constant_wraps_to_width(self):
        assert Constant(I8, 200).value == -56
        assert Constant(I8, -129).value == 127

    def test_float_constant(self):
        const = Constant(F64, 2.5)
        assert const.value == 2.5
        assert isinstance(const.value, float)

    def test_constant_requires_scalar_type(self):
        with pytest.raises(ValueError):
            Constant(vector_of(I64, 2), 0)

    def test_constants_not_interned(self):
        assert Constant(I64, 1) is not Constant(I64, 1)

    def test_constants_equal_by_value(self):
        assert constants_equal(Constant(I64, 7), Constant(I64, 7))
        assert not constants_equal(Constant(I64, 7), Constant(I64, 8))
        assert not constants_equal(Constant(I64, 7), Constant(I8, 7))

    def test_constants_equal_rejects_non_constants(self):
        assert not constants_equal(Constant(I64, 7), Argument(I64, "x"))


class TestVectorConstant:
    def test_values_wrap(self):
        vc = VectorConstant(vector_of(I8, 2), [300, -300])
        assert vc.values == (44, -44)

    def test_length_checked(self):
        with pytest.raises(ValueError):
            VectorConstant(vector_of(I64, 4), [1, 2])

    def test_needs_vector_type(self):
        with pytest.raises(ValueError):
            VectorConstant(I64, [1])

    def test_short_name(self):
        vc = VectorConstant(vector_of(I64, 2), [1, 3])
        assert vc.short_name() == "<1, 3>"


class TestUseDefChains:
    def _add(self, a, b):
        return BinaryOperator("add", a, b)

    def test_operands_register_uses(self):
        x = Argument(I64, "x")
        y = Argument(I64, "y")
        add = self._add(x, y)
        assert x.num_uses == 1
        assert x.uses[0].user is add
        assert x.uses[0].index == 0
        assert y.uses[0].index == 1

    def test_same_value_twice_registers_two_uses(self):
        x = Argument(I64, "x")
        add = self._add(x, x)
        assert x.num_uses == 2
        assert {u.index for u in x.uses} == {0, 1}
        assert add.operands == [x, x]

    def test_users_deduplicates(self):
        x = Argument(I64, "x")
        add = self._add(x, x)
        assert x.users() == [add]

    def test_set_operand_moves_use(self):
        x = Argument(I64, "x")
        y = Argument(I64, "y")
        z = Argument(I64, "z")
        add = self._add(x, y)
        add.set_operand(0, z)
        assert x.num_uses == 0
        assert z.num_uses == 1
        assert add.operands[0] is z

    def test_replace_all_uses_with(self):
        x = Argument(I64, "x")
        y = Argument(I64, "y")
        z = Argument(I64, "z")
        add1 = self._add(x, y)
        add2 = self._add(y, x)
        x.replace_all_uses_with(z)
        assert x.num_uses == 0
        assert z.num_uses == 2
        assert add1.operands[0] is z
        assert add2.operands[1] is z

    def test_replace_all_uses_with_self_is_noop(self):
        x = Argument(I64, "x")
        self._add(x, x)
        x.replace_all_uses_with(x)
        assert x.num_uses == 2

    def test_drop_all_references(self):
        x = Argument(I64, "x")
        y = Argument(I64, "y")
        add = self._add(x, y)
        add.drop_all_references()
        assert x.num_uses == 0
        assert y.num_uses == 0
        assert add.operands == []

    def test_swap_operands_keeps_use_lists_coherent(self):
        x = Argument(I64, "x")
        y = Argument(I64, "y")
        add = self._add(x, y)
        add.swap_operands()
        assert add.operands == [y, x]
        assert x.uses[0].index == 1
        assert y.uses[0].index == 0

    def test_swap_operands_with_identical_operands(self):
        x = Argument(I64, "x")
        add = self._add(x, x)
        add.swap_operands()
        assert add.operands == [x, x]
        assert x.num_uses == 2


class TestGlobalArray:
    def test_type_is_pointer_to_element(self):
        array = GlobalArray("A", I64, 16)
        assert array.type.is_pointer
        assert array.type.pointee is I64

    def test_rejects_non_scalar_element(self):
        with pytest.raises(ValueError):
            GlobalArray("A", vector_of(I64, 2), 16)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GlobalArray("A", I64, 0)

    def test_short_name(self):
        assert GlobalArray("A", I64, 4).short_name() == "@A"
