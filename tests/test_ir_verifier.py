"""Tests for the IR verifier: it must catch every splicing mistake."""

import pytest

from repro.ir import (
    BinaryOperator,
    Constant,
    Function,
    I64,
    IRBuilder,
    Ret,
    VerificationError,
    verify_function,
)


def make_func():
    func = Function("f", [("i", I64)])
    block = func.add_block("entry")
    return func, block, IRBuilder(block)


def test_valid_function_passes():
    func, block, builder = make_func()
    i = func.argument("i")
    a = builder.add(i, builder.i64(1))
    builder.add(a, builder.i64(2))
    builder.ret()
    verify_function(func)


def test_use_before_def_detected():
    func, block, builder = make_func()
    i = func.argument("i")
    a = builder.add(i, builder.i64(1))
    b = builder.add(a, builder.i64(2))
    # Move the definition after its use.
    block.remove(a)
    block.append(a)
    with pytest.raises(VerificationError, match="dominate"):
        verify_function(func)


def test_detached_operand_detected():
    func, block, builder = make_func()
    i = func.argument("i")
    floating = BinaryOperator("add", i, Constant(I64, 1))  # never inserted
    builder.add(floating, builder.i64(2))
    with pytest.raises(VerificationError, match="not in the function"):
        verify_function(func)


def test_foreign_argument_detected():
    func, block, builder = make_func()
    other = Function("g", [("j", I64)])
    builder.add(other.argument("j"), builder.i64(1))
    with pytest.raises(VerificationError, match="another function"):
        verify_function(func)


def test_terminator_must_be_last():
    func, block, builder = make_func()
    builder.ret()
    block.append(BinaryOperator("add", func.argument("i"),
                                Constant(I64, 1)))
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(func)


def test_stale_use_entry_detected():
    func, block, builder = make_func()
    i = func.argument("i")
    a = builder.add(i, builder.i64(1))
    b = builder.add(a, builder.i64(2))
    # Corrupt the use list by hand: bypass set_operand.
    b.operands[0] = i
    with pytest.raises(VerificationError):
        verify_function(func)


def test_use_by_detached_instruction_detected():
    func, block, builder = make_func()
    i = func.argument("i")
    a = builder.add(i, builder.i64(1))
    dangling = BinaryOperator("add", a, Constant(I64, 5))
    assert dangling.parent is None
    with pytest.raises(VerificationError, match="detached"):
        verify_function(func)
