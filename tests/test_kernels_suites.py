"""Tests for the kernel catalog and the synthetic benchmark suites."""

import pytest

from repro.interp import Interpreter, MemoryImage
from repro.ir import verify_function, verify_module
from repro.kernels import (
    ALL_KERNELS,
    EVALUATION_KERNELS,
    Kernel,
    kernel_by_name,
    MOTIVATION_KERNELS,
    SPEC_KERNELS,
    SUITE_SPECS,
    build_suite,
    suite_by_name,
)
from repro.kernels.suites import EXECUTION_WEIGHTS, function_weight


class TestCatalog:
    def test_eleven_evaluation_kernels(self):
        # Table 2: 8 SPEC-derived kernels + 3 motivation kernels
        assert len(SPEC_KERNELS) == 8
        assert len(MOTIVATION_KERNELS) == 3
        assert len(EVALUATION_KERNELS) == 11

    def test_lookup(self):
        assert kernel_by_name("453.calc-z3").name == "453.calc-z3"
        with pytest.raises(KeyError):
            kernel_by_name("454.nope")

    def test_names_unique(self):
        names = [k.name for k in EVALUATION_KERNELS]
        assert len(set(names)) == len(names)

    def test_every_kernel_has_provenance(self):
        for kernel in ALL_KERNELS.values():
            assert kernel.origin
            assert kernel.description

    @pytest.mark.parametrize("kernel", list(ALL_KERNELS.values()),
                             ids=lambda k: k.name)
    def test_kernel_builds_verifies_and_runs(self, kernel):
        module, func = kernel.build()
        verify_function(func)
        memory = MemoryImage(module)
        memory.randomize(seed=1)
        result = Interpreter(memory).run(func, kernel.default_args)
        assert result.cycles > 0

    def test_builds_are_independent(self):
        kernel = EVALUATION_KERNELS[0]
        _, f1 = kernel.build()
        _, f2 = kernel.build()
        assert f1 is not f2
        # mutating one copy must not affect the other
        f1.entry.remove(f1.entry.instructions[-1])
        assert len(f2.entry) != len(f1.entry)


class TestSuites:
    def test_seven_suites(self):
        assert len(SUITE_SPECS) == 7
        names = {spec.name for spec in SUITE_SPECS}
        assert "453.povray" in names
        assert "410.bwaves" in names

    def test_lookup(self):
        assert suite_by_name("433.milc").sensitive == 2
        with pytest.raises(KeyError):
            suite_by_name("999.unknown")

    def test_bwaves_has_no_sensitive_regions(self):
        assert suite_by_name("410.bwaves").sensitive == 0

    def test_povray_is_most_sensitive(self):
        povray = suite_by_name("453.povray")
        assert povray.sensitive == max(s.sensitive for s in SUITE_SPECS)

    @pytest.mark.parametrize("spec", SUITE_SPECS, ids=lambda s: s.name)
    def test_suite_builds_and_verifies(self, spec):
        module = build_suite(spec)
        verify_module(module)
        assert len(module.functions) == spec.total_functions

    def test_suite_generation_is_deterministic(self):
        from repro.ir import print_module

        spec = SUITE_SPECS[0]
        assert print_module(build_suite(spec)) == print_module(
            build_suite(spec)
        )

    def test_function_kinds_encoded_in_names(self):
        module = build_suite(SUITE_SPECS[0])
        kinds = {name.rsplit("_", 1)[-1] for name in module.functions}
        assert kinds <= {"sensitive", "friendly", "scalar"}

    def test_execution_weights(self):
        assert function_weight("f3_scalar") == EXECUTION_WEIGHTS["scalar"]
        assert function_weight("f0_sensitive") == 1
        assert function_weight("whatever") == 1

    @pytest.mark.parametrize("spec", SUITE_SPECS, ids=lambda s: s.name)
    def test_suite_functions_execute(self, spec):
        module = build_suite(spec)
        memory = MemoryImage(module)
        memory.randomize(seed=3)
        interp = Interpreter(memory)
        for func in module.functions.values():
            result = interp.run(func, {"i": 8})
            assert result.cycles > 0
