"""Lit-style golden tests: each ``tests/lit/*.c`` file declares a
configuration (``// CONFIG:``, optionally ``// TARGET:``) and FileCheck
directives; the runner compiles the file and checks the printed module.
"""

from pathlib import Path

import pytest

from repro.costmodel import target_by_name
from repro.frontend import compile_kernel_source
from repro.ir import print_module, verify_module
from repro.opt import compile_module
from repro.slp import VectorizerConfig
from tests.filecheck import run_filecheck

LIT_DIR = Path(__file__).parent / "lit"
LIT_FILES = sorted(LIT_DIR.glob("*.c"))

CONFIGS = {
    "o3": VectorizerConfig.o3,
    "slp-nr": VectorizerConfig.slp_nr,
    "slp": VectorizerConfig.slp,
    "lslp": VectorizerConfig.lslp,
}


def _header_value(source: str, key: str, default: str) -> str:
    for line in source.splitlines():
        marker = f"// {key}:"
        if line.startswith(marker):
            return line[len(marker):].strip()
    return default


@pytest.mark.parametrize(
    "path", LIT_FILES, ids=lambda p: p.stem
)
def test_lit(path: Path):
    source = path.read_text()
    config = CONFIGS[_header_value(source, "CONFIG", "lslp")]()
    target = target_by_name(
        _header_value(source, "TARGET", "skylake-like")
    )
    module = compile_kernel_source(source, path.stem)
    compile_module(module, config, target)
    verify_module(module)
    output = print_module(module)
    run_filecheck(output, source)


def test_lit_suite_is_not_empty():
    assert len(LIT_FILES) >= 10
