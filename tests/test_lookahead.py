"""Tests for look-ahead matching and scoring — including the paper's
Figure 7 example with its exact scores."""

import pytest

from repro.ir import (
    Constant,
    Function,
    GlobalArray,
    I64,
    F64,
    IRBuilder,
    Module,
)
from repro.slp import (
    LookAheadContext,
    are_consecutive_or_match,
    get_lookahead_score,
    get_lookahead_score_max,
)


@pytest.fixture
def env():
    module = Module("m")
    b = module.add_global(GlobalArray("B", I64, 64))
    c = module.add_global(GlobalArray("C", I64, 64))
    func = Function("f", [("i", I64)])
    builder = IRBuilder(func.add_block("entry"))
    ctx = LookAheadContext()
    return module, func, builder, b, c, ctx


def load_at(builder, array, index_value, offset):
    idx = builder.add(index_value, builder.i64(offset))
    return builder.load(builder.gep(array, idx))


class TestTrivialMatching:
    def test_identical_values_match(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        assert are_consecutive_or_match(i, i, ctx)

    def test_constants_match_constants(self, env):
        *_, ctx = env
        assert are_consecutive_or_match(
            Constant(I64, 1), Constant(I64, 99), ctx
        )

    def test_constants_of_different_types_do_not_match(self, env):
        *_, ctx = env
        assert not are_consecutive_or_match(
            Constant(I64, 1), Constant(F64, 1.0), ctx
        )

    def test_consecutive_loads_match(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        l0 = load_at(builder, b, i, 0)
        l1 = load_at(builder, b, i, 1)
        assert are_consecutive_or_match(l0, l1, ctx)
        # order matters: candidate must be *after* last
        assert not are_consecutive_or_match(l1, l0, ctx)

    def test_non_consecutive_loads_do_not_match(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        l0 = load_at(builder, b, i, 0)
        l2 = load_at(builder, b, i, 2)
        lc = load_at(builder, c, i, 1)
        assert not are_consecutive_or_match(l0, l2, ctx)
        assert not are_consecutive_or_match(l0, lc, ctx)

    def test_same_opcode_instructions_match(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        s1 = builder.shl(i, builder.i64(1))
        s2 = builder.shl(i, builder.i64(2))
        a1 = builder.add(i, builder.i64(1))
        assert are_consecutive_or_match(s1, s2, ctx)
        assert not are_consecutive_or_match(s1, a1, ctx)

    def test_instruction_vs_constant_no_match(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        s1 = builder.shl(i, builder.i64(1))
        assert not are_consecutive_or_match(s1, Constant(I64, 1), ctx)


class TestFigure7Scores:
    """Reproduce the exact look-ahead calculation of Figure 7."""

    def _build(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        # last lane: B[i+0] << 1
        last = builder.shl(load_at(builder, b, i, 0), builder.i64(1))
        # candidate 1 (light-blue): B[i+1] << 2
        blue = builder.shl(load_at(builder, b, i, 1), builder.i64(2))
        # candidate 2 (green): C[i+1] << 3
        green = builder.shl(load_at(builder, c, i, 1), builder.i64(3))
        return last, blue, green, ctx

    def test_blue_candidate_scores_2(self, env):
        last, blue, green, ctx = self._build(env)
        # loads consecutive (1) + both constants (1) = 2, as in Fig. 7
        assert get_lookahead_score(last, blue, 1, ctx) == 2

    def test_green_candidate_scores_1(self, env):
        last, blue, green, ctx = self._build(env)
        # loads not consecutive (0) + both constants (1) = 1
        assert get_lookahead_score(last, green, 1, ctx) == 1

    def test_level_zero_is_trivial_match(self, env):
        last, blue, green, ctx = self._build(env)
        assert get_lookahead_score(last, blue, 0, ctx) == 1
        assert get_lookahead_score(last, green, 0, ctx) == 1

    def test_max_aggregation_agrees_here(self, env):
        last, blue, green, ctx = self._build(env)
        assert get_lookahead_score_max(last, blue, 1, ctx) == 2
        assert get_lookahead_score_max(last, green, 1, ctx) == 1


class TestDeepScores:
    def test_recursion_descends_multiple_levels(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        # last: (B[i+0] << 1) + 5 ; candidate: (B[i+1] << 2) + 6
        last = builder.add(
            builder.shl(load_at(builder, b, i, 0), builder.i64(1)),
            builder.i64(5),
        )
        cand = builder.add(
            builder.shl(load_at(builder, b, i, 1), builder.i64(2)),
            builder.i64(6),
        )
        # level 1: (shl vs shl: 1) + (5 vs 6: 1) = 2
        assert get_lookahead_score(last, cand, 1, ctx) == 2
        # level 2: shl recurses -> (loads consecutive 1 + consts 1) + consts 1
        assert get_lookahead_score(last, cand, 2, ctx) == 3

    def test_different_opcodes_stop_recursion(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        shl = builder.shl(i, builder.i64(1))
        add = builder.add(i, builder.i64(1))
        assert get_lookahead_score(shl, add, 4, ctx) == 0

    def test_loads_are_leaves(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        l0 = load_at(builder, b, i, 0)
        l1 = load_at(builder, b, i, 1)
        # even at deep levels, the score of a load pair is the adjacency
        assert get_lookahead_score(l0, l1, 8, ctx) == 1

    def test_sum_vs_max_aggregation_differ(self, env):
        module, func, builder, b, c, ctx = env
        i = func.argument("i")
        # x + x: the sum rule counts the cross pairs, max does not
        x = builder.shl(i, builder.i64(1))
        last = builder.add(x, x)
        cand = builder.add(x, x)
        total_sum = get_lookahead_score(last, cand, 1, ctx)
        total_max = get_lookahead_score_max(last, cand, 1, ctx)
        assert total_sum == 4   # 2x2 identical pairings
        assert total_max == 2   # best pairing per operand
