"""Unroll-and-SLP: LoopInfo/SCEV analyses, partial unrolling, the cost
gate, reduction packing, and the end-to-end ``--loop-vectorize`` mode.

The structural analyses (natural loops, add-recurrences, symbolic trip
counts) are unit-tested against hand-built IR; partial unrolling is
checked observationally (non-divisible and zero trip counts must hit
the scalar epilogue); the loopy kernel family asserts the acceptance
criteria — vector trees, a cycle win over the scalar loop, and
bit-identical execution on both backend tiers.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.loops import (
    find_counted_loops,
    find_natural_loops,
    LoopInfo,
    match_counted_loop,
)
from repro.analysis.scev import AddRec, ScalarEvolution
from repro.backend import cross_check
from repro.costmodel.targets import skylake_like
from repro.frontend import compile_kernel_source, LowerError
from repro.interp import compare_runs
from repro.interp.interpreter import Interpreter
from repro.interp.memory import MemoryImage
from repro.ir import verify_function
from repro.kernels import LOOPY_KERNELS
from repro.obs import ListSink, metrics, records
from repro.opt import compile_function, run_unroll
from repro.opt.unroll import (
    partial_unroll,
    plan_loop_vectorize,
)
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel

TARGET = skylake_like()

DOT = """
long B[], C[];
long kernel(long n) {
    long s = 0;
    for (long j = 0; j < n; j = j + 1) {
        s = s + B[j] * C[j];
    }
    return s;
}
"""

NESTED = """
long A[64];
void kernel(long n) {
    for (long i = 0; i < n; i = i + 1) {
        for (long j = 0; j < 4; j = j + 1) {
            A[j] = A[j] + i;
        }
    }
}
"""


def _loopvec_config() -> VectorizerConfig:
    return replace(VectorizerConfig.lslp(), loop_vectorize=True)


# ---------------------------------------------------------------------------
# Natural-loop discovery and LoopInfo
# ---------------------------------------------------------------------------


class TestNaturalLoops:
    def test_single_loop_shape(self):
        module, func = build_kernel(DOT)
        loops = find_natural_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header.name == "loop.header"
        assert loop.depth == 1
        assert loop.parent is None
        assert loop.preheader() is not None
        assert [b.name for b in loop.exits()] == ["loop.exit"]

    def test_nesting_and_depths(self):
        module, func = build_kernel(NESTED)
        loops = find_natural_loops(func)
        assert len(loops) == 2
        by_depth = sorted(loops, key=lambda l: l.depth)
        outer, inner = by_depth
        assert outer.depth == 1 and inner.depth == 2
        assert inner.parent is outer
        assert outer.contains(inner.header)
        info = LoopInfo(func)
        assert info.innermost(inner.header).header is inner.header
        assert info.depth(inner.header) == 2
        assert info.depth(func.blocks[0]) == 0

    def test_straight_line_has_no_loops(self):
        source = """
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i + 0];
    A[i + 1] = B[i + 1];
}
"""
        module, func = build_kernel(source)
        assert find_natural_loops(func) == []


class TestCountedLoopMatching:
    def test_accumulator_loop_matches(self):
        module, func = build_kernel(DOT)
        infos = find_counted_loops(func)
        assert len(infos) == 1
        info = infos[0]
        assert info.step == 1
        assert info.predicate == "slt"
        assert not info.is_constant          # symbolic bound: %n
        assert len(info.accumulators) == 1
        acc = info.accumulators[0]
        assert acc.phi.name.startswith("s")
        assert info.phis_escape               # s is returned after the loop

    def test_constant_trip_count(self):
        source = """
long A[64], B[64];
void kernel(long i) {
    for (long j = 0; j < 9; j = j + 2) {
        A[j] = B[j];
    }
}
"""
        module, func = build_kernel(source)
        info = find_counted_loops(func)[0]
        assert info.is_constant
        assert info.trip_count(max_trip=64) == 5


# ---------------------------------------------------------------------------
# SCEV: add-recurrences and symbolic trip counts
# ---------------------------------------------------------------------------


class TestAddRec:
    def test_iv_phi_is_an_addrec(self):
        module, func = build_kernel(DOT)
        info = find_counted_loops(func)[0]
        scev = ScalarEvolution()
        rec = scev.add_recurrence(info.iv)
        assert isinstance(rec, AddRec)
        assert rec.step == 1
        assert rec.init.is_constant and rec.init.offset == 0
        assert rec.value_at(3).offset == 3

    def test_non_phi_is_not_an_addrec(self):
        module, func = build_kernel(DOT)
        scev = ScalarEvolution()
        assert scev.add_recurrence(func.argument("n")) is None

    def test_symbolic_trip_count(self):
        module, func = build_kernel(DOT)
        info = find_counted_loops(func)[0]
        scev = ScalarEvolution()
        trips = scev.trip_count(info.init, info.step, info.bound,
                                info.predicate)
        assert trips is not None and not trips.is_constant

    def test_constant_trip_count_ceil_division(self):
        source = """
long A[64], B[64];
void kernel(long i) {
    for (long j = 1; j <= 10; j = j + 3) {
        A[j] = B[j];
    }
}
"""
        module, func = build_kernel(source)
        info = find_counted_loops(func)[0]
        scev = ScalarEvolution()
        trips = scev.trip_count(info.init, info.step, info.bound,
                                info.predicate)
        assert trips.is_constant and trips.offset == 4  # j = 1,4,7,10


# ---------------------------------------------------------------------------
# Partial unrolling: semantics across trip-count shapes
# ---------------------------------------------------------------------------


class TestPartialUnroll:
    @pytest.mark.parametrize("n", [0, 1, 3, 4, 5, 7, 8, 17, 64])
    def test_epilogue_handles_every_remainder(self, n):
        reference = build_kernel(DOT)
        module, func = build_kernel(DOT)
        info = find_counted_loops(func)[0]
        assert partial_unroll(func, info, factor=4) is not None
        verify_function(func)
        outcome = compare_runs(reference, (module, func),
                               args={"n": n}, seed=n)
        assert outcome.equivalent, outcome.detail

    def test_rejects_factor_below_two(self):
        module, func = build_kernel(DOT)
        info = find_counted_loops(func)[0]
        assert partial_unroll(func, info, factor=1) is None

    def test_body_is_cloned_factor_times(self):
        module, func = build_kernel(DOT)
        info = find_counted_loops(func)[0]
        partial_unroll(func, info, factor=4)
        main_body = next(b for b in func.blocks
                         if b.name.startswith("main.body"))
        muls = [i for i in main_body.instructions
                if getattr(i, "opcode", "") == "mul"]
        assert len(muls) == 4


class TestCostGate:
    def test_dot_product_is_profitable(self):
        module, func = build_kernel(DOT)
        info = find_counted_loops(func)[0]
        factor, reason = plan_loop_vectorize(info, TARGET)
        assert factor == 4, reason

    def test_serial_body_stays_scalar(self):
        # Nothing packs: the loop-carried chain is the whole body.
        source = """
long B[];
long kernel(long n) {
    long s = 0;
    for (long j = 0; j < n; j = j + 1) {
        s = (s >> 1) - B[j];
    }
    return s;
}
"""
        module, func = build_kernel(source)
        info = find_counted_loops(func)[0]
        factor, reason = plan_loop_vectorize(info, TARGET)
        assert factor == 0


# ---------------------------------------------------------------------------
# run_unroll: decline diagnostics and the partial-unroll path
# ---------------------------------------------------------------------------


def _run_with_observability(func, **kwargs):
    sink = ListSink()
    previous = records.set_sink(sink)
    was_publishing = metrics.publishing()
    metrics.set_publishing(True)
    declined_before = metrics.registry().counter(
        "loop.unroll.declined").value
    partial_before = metrics.registry().counter(
        "loop.unroll.partial").value
    try:
        remarks = []
        run_unroll(func, remarks=remarks, **kwargs)
    finally:
        records.set_sink(previous)
        metrics.set_publishing(was_publishing)
    declined = metrics.registry().counter(
        "loop.unroll.declined").value - declined_before
    partial = metrics.registry().counter(
        "loop.unroll.partial").value - partial_before
    return sink, remarks, declined, partial


class TestRunUnrollDiagnostics:
    def test_symbolic_trip_declines_with_remark_and_metric(self):
        module, func = build_kernel(DOT)
        sink, remarks, declined, partial = _run_with_observability(func)
        assert declined == 1 and partial == 0
        assert len(remarks) == 1
        assert remarks[0].category == "loop-unroll"
        assert "symbolic" in remarks[0].message
        events = [r for r in sink.records
                  if r["type"] == "loop.unroll"
                  and r["event"] == "declined"]
        assert events and "symbolic" in events[0]["reason"]

    def test_above_cap_trip_mentions_the_cap(self):
        source = """
long A[1200], B[1200];
void kernel(long i) {
    for (long j = 0; j < 1200; j = j + 1) {
        A[j] = B[j];
    }
}
"""
        module, func = build_kernel(source)
        sink, remarks, declined, partial = _run_with_observability(func)
        assert declined == 1
        assert "--unroll-max-trip" in remarks[0].remediation

    def test_raised_cap_fully_unrolls(self):
        source = """
long A[300], B[300];
void kernel(long i) {
    for (long j = 0; j < 300; j = j + 1) {
        A[j] = B[j];
    }
}
"""
        module, func = build_kernel(source)
        run_unroll(func, max_trip_count=512)
        assert find_natural_loops(func) == []

    def test_loop_vectorize_partial_unrolls_with_metric(self):
        module, func = build_kernel(DOT)
        sink, remarks, declined, partial = _run_with_observability(
            func, loop_vectorize=True, target=TARGET
        )
        assert partial == 1 and declined == 0
        assert not remarks
        events = [r for r in sink.records
                  if r["type"] == "loop.unroll"
                  and r["event"] == "partial"]
        assert events and "factor=4" in events[0]["reason"]
        verify_function(func)


# ---------------------------------------------------------------------------
# Frontend: loop-carried accumulator assignments
# ---------------------------------------------------------------------------


class TestFrontendAssignments:
    def test_undefined_name_rejected(self):
        with pytest.raises(LowerError, match="undefined"):
            compile_kernel_source(
                "long kernel(long n) { s = n; return s; }"
            )

    def test_loop_variable_reassignment_rejected(self):
        with pytest.raises(LowerError, match="loop variable"):
            compile_kernel_source("""
long kernel(long n) {
    long s = 0;
    for (long j = 0; j < n; j = j + 1) { j = j + 2; }
    return s;
}
""")

    def test_assignment_inside_if_rejected(self):
        with pytest.raises(LowerError, match="\\?:"):
            compile_kernel_source("""
long B[64];
long kernel(long n) {
    long s = 0;
    if (n < 4) { s = B[0]; }
    return s;
}
""")

    def test_accumulator_value_after_loop(self):
        module = compile_kernel_source("""
long kernel(long n) {
    long s = 3;
    for (long j = 0; j < n; j = j + 1) {
        s = s + 2;
    }
    return s;
}
""")
        func = module.get_function("kernel")
        mem = MemoryImage(module)
        result = Interpreter(mem, TARGET).run(func, {"n": 5})
        assert result.return_value == 13


# ---------------------------------------------------------------------------
# CLI and config threading
# ---------------------------------------------------------------------------


class TestConfigThreading:
    def test_cli_flags_reach_the_config(self):
        from repro.cli import _config_from_args, build_parser

        args = build_parser().parse_args([
            "compile", "kernel.c",
            "--loop-vectorize", "--unroll-max-trip", "512",
        ])
        config = _config_from_args(args)
        assert config.loop_vectorize is True
        assert config.unroll_max_trip == 512

        plain = _config_from_args(
            build_parser().parse_args(["compile", "kernel.c"])
        )
        assert plain.loop_vectorize is False
        assert plain.unroll_max_trip is None

    def test_fingerprint_distinguishes_loop_vectorize(self):
        from repro.service.cache import config_fingerprint

        base = config_fingerprint(VectorizerConfig.lslp())
        loopvec = config_fingerprint(
            replace(VectorizerConfig.lslp(), loop_vectorize=True)
        )
        assert base != loopvec
        assert "loop_vectorize" in base and "unroll_max_trip" in base


# ---------------------------------------------------------------------------
# Acceptance: the loopy kernel family end to end
# ---------------------------------------------------------------------------


class TestLoopyKernels:
    @pytest.mark.parametrize("kernel", LOOPY_KERNELS,
                             ids=lambda k: k.name)
    def test_vectorizes_and_beats_scalar(self, kernel):
        ref_module, ref_func = kernel.build()
        module, func = kernel.build()
        result = compile_function(func, _loopvec_config(), TARGET)
        verify_function(func)
        assert result.report.num_vectorized >= 1

        mem_ref = MemoryImage(ref_module)
        mem_ref.randomize(11)
        mem_vec = MemoryImage(module)
        mem_vec.randomize(11)
        scalar = Interpreter(mem_ref, TARGET).run(
            ref_func, kernel.default_args)
        vector = Interpreter(mem_vec, TARGET).run(
            func, kernel.default_args)
        assert vector.return_value == scalar.return_value
        assert mem_ref.arrays() == mem_vec.arrays()
        assert vector.cycles < scalar.cycles

    @pytest.mark.parametrize("kernel", LOOPY_KERNELS,
                             ids=lambda k: k.name)
    def test_both_tiers_cross_check(self, kernel):
        module, func = kernel.build()
        compile_function(func, _loopvec_config(), TARGET)
        for mode in ("unrolled", "numpy"):
            outcome = cross_check(module, func, TARGET,
                                  base_args=kernel.default_args,
                                  runs=2, vector_mode=mode)
            assert outcome.ok, f"{mode}: {outcome.render()}"

    def test_flag_off_is_byte_stable(self):
        """Without --loop-vectorize the pipeline must not touch the
        loop beyond what it always did."""
        from repro.ir.printer import print_function
        module, func = LOOPY_KERNELS[0].build()
        compile_function(func, VectorizerConfig.lslp(), TARGET)
        before = print_function(func)
        module2, func2 = LOOPY_KERNELS[0].build()
        compile_function(func2, VectorizerConfig.lslp(), TARGET)
        assert print_function(func2) == before
        assert any(b.name == "loop.header" for b in func.blocks)
