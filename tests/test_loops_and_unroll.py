"""Tests for for-loop parsing/lowering, execution, unrolling, and CFG
simplification — the "SLP after loop transformations" pipeline."""

import pytest

from repro.frontend import compile_kernel_source, LowerError, ParseError
from repro.interp import compare_runs, Interpreter, InterpreterError, MemoryImage
from repro.ir import print_function, verify_function
from repro.opt import (
    compile_function,
    find_counted_loop,
    run_simplifycfg,
    run_unroll,
)
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel


class TestFrontendLoops:
    def test_loop_lowering_shape(self):
        module, func = build_kernel("""
long A[64], B[64];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[j] = B[j] + 1;
    }
}
""")
        verify_function(func)
        names = [block.name for block in func.blocks]
        assert names == ["entry", "loop.header", "loop.body", "loop.exit"]
        header = func.blocks[1]
        assert len(header.phis()) == 1
        assert header.terminator.opcode == "condbr"

    def test_loop_executes(self):
        module, func = build_kernel("""
long A[64], B[64];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[j] = B[j] * 2;
    }
}
""")
        memory = MemoryImage(module)
        memory.set_array("B", list(range(64)))
        Interpreter(memory).run(func, {"n": 7})
        assert memory.get_array("A")[:8] == [0, 2, 4, 6, 8, 10, 12, 0]

    def test_zero_trip_loop(self):
        module, func = build_kernel("""
long A[64];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[j] = 1;
    }
}
""")
        memory = MemoryImage(module)
        Interpreter(memory).run(func, {"n": 0})
        assert memory.get_array("A") == [0] * 64

    def test_nested_loops(self):
        module, func = build_kernel("""
long A[64];
void kernel(long n) {
    for (long r = 0; r < 4; r = r + 1) {
        for (long c = 0; c < 4; c = c + 1) {
            A[4*r + c] = r * 10 + c;
        }
    }
}
""")
        verify_function(func)
        memory = MemoryImage(module)
        Interpreter(memory).run(func, {"n": 0})
        assert memory.get_array("A")[:8] == [0, 1, 2, 3, 10, 11, 12, 13]

    def test_loop_variable_scoped_to_loop(self):
        with pytest.raises(LowerError, match="undefined"):
            compile_kernel_source("""
long A[64];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[j] = j;
    }
    A[0] = j;
}
""")

    def test_body_locals_scoped(self):
        with pytest.raises(LowerError, match="undefined"):
            compile_kernel_source("""
long A[64], B[64];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        long t = B[j];
        A[j] = t;
    }
    A[0] = t;
}
""")

    def test_return_inside_loop_rejected(self):
        with pytest.raises(LowerError, match="return inside a loop"):
            compile_kernel_source("""
long A[64];
long kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        return 1;
    }
    return 0;
}
""")

    def test_step_must_assign_loop_var(self):
        with pytest.raises(ParseError, match="step must assign"):
            compile_kernel_source("""
long A[64];
void kernel(long n) {
    for (long j = 0; j < n; k = j + 1) {
        A[j] = 1;
    }
}
""")

    def test_float_loop_var_rejected(self):
        with pytest.raises(LowerError, match="integer"):
            compile_kernel_source("""
double A[64];
void kernel(long n) {
    for (double j = 0; j < 4; j = j + 1) {
        A[0] = j;
    }
}
""")

    def test_step_limit_stops_runaway_loops(self):
        module, func = build_kernel("""
long A[64];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 0) {
        A[0] = j;
    }
}
""")
        memory = MemoryImage(module)
        with pytest.raises(InterpreterError, match="step limit"):
            Interpreter(memory).run(func, {"n": 5}, step_limit=1000)


class TestUnroll:
    CONST_LOOP = """
long A[64], B[64];
void kernel(long i) {
    for (long j = 0; j < 4; j = j + 1) {
        A[4*i + j] = B[4*i + j] + 1;
    }
}
"""

    def test_find_counted_loop(self):
        module, func = build_kernel(self.CONST_LOOP)
        loop = find_counted_loop(func)
        assert loop is not None
        assert loop.init == 0
        assert loop.bound == 4
        assert loop.step == 1
        assert loop.predicate == "slt"
        assert loop.trip_values() == [0, 1, 2, 3]

    def test_symbolic_bound_not_matched(self):
        module, func = build_kernel("""
long A[64];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[j] = 1;
    }
}
""")
        assert find_counted_loop(func) is None

    def test_trip_values_with_step_and_sle(self):
        module, func = build_kernel("""
long A[64];
void kernel(long i) {
    for (long j = 2; j <= 8; j = j + 3) {
        A[j] = 1;
    }
}
""")
        loop = find_counted_loop(func)
        assert loop.trip_values() == [2, 5, 8]

    def test_huge_trip_count_not_unrolled(self):
        module, func = build_kernel("""
long A[1024];
void kernel(long i) {
    for (long j = 0; j < 1000; j = j + 1) {
        A[0] = A[0] & j;
    }
}
""")
        assert not run_unroll(func)

    def test_unroll_produces_straight_line(self):
        module, func = build_kernel(self.CONST_LOOP)
        assert run_unroll(func)
        run_simplifycfg(func)
        verify_function(func)
        assert len(func.blocks) == 1
        stores = [i for i in func.entry if i.opcode == "store"]
        assert len(stores) == 4

    def test_unroll_preserves_semantics(self):
        reference = build_kernel(self.CONST_LOOP)
        module, func = build_kernel(self.CONST_LOOP)
        run_unroll(func)
        run_simplifycfg(func)
        verify_function(func)
        outcome = compare_runs(reference, (module, func), args={"i": 3})
        assert outcome.equivalent, outcome.detail

    def test_nested_loops_unroll_inside_out(self):
        source = """
long A[64];
void kernel(long i) {
    for (long r = 0; r < 3; r = r + 1) {
        for (long c = 0; c < 3; c = c + 1) {
            A[8*r + c] = r * 10 + c;
        }
    }
}
"""
        reference = build_kernel(source)
        module, func = build_kernel(source)
        # inner then outer: run to fixpoint with simplifycfg in between
        for _ in range(4):
            run_unroll(func)
            run_simplifycfg(func)
        verify_function(func)
        assert len(func.blocks) == 1
        outcome = compare_runs(reference, (module, func), args={"i": 0})
        assert outcome.equivalent, outcome.detail

    def test_zero_trip_loop_unrolls_to_nothing(self):
        module, func = build_kernel("""
long A[64];
void kernel(long i) {
    for (long j = 5; j < 5; j = j + 1) {
        A[j] = 1;
    }
}
""")
        assert run_unroll(func)
        run_simplifycfg(func)
        stores = [i for i in func.entry if i.opcode == "store"]
        assert stores == []


class TestSimplifyCFG:
    def test_merges_unrolled_chain(self):
        module, func = build_kernel(TestUnroll.CONST_LOOP)
        run_unroll(func)
        assert len(func.blocks) > 1
        assert run_simplifycfg(func)
        assert len(func.blocks) == 1
        verify_function(func)

    def test_removes_unreachable(self):
        module, func = build_kernel(
            "long A[8];\nvoid kernel(long i) { A[i] = 1; }"
        )
        dead = func.add_block("dead")
        from repro.ir import IRBuilder

        IRBuilder(dead).ret()
        assert run_simplifycfg(func)
        assert len(func.blocks) == 1

    def test_folds_constant_condbr(self):
        module, func = build_kernel("""
long A[8], B[8];
void kernel(long i) {
    for (long j = 0; j < 2; j = j + 1) {
        A[j] = B[j];
    }
}
""")
        # constant-fold 0 < 2 by hand: unroll handles it, but
        # fold_constant_branches alone must also be sound
        from repro.opt import fold_constant_branches

        assert not fold_constant_branches(func)  # no constant conditions yet


class TestLoopVectorizationIntegration:
    @pytest.mark.parametrize("config", [
        VectorizerConfig.o3(),
        VectorizerConfig.slp(),
        VectorizerConfig.lslp(),
    ], ids=lambda c: c.name)
    def test_loop_kernel_through_pipeline(self, config):
        source = TestUnroll.CONST_LOOP
        reference = build_kernel(source)
        module, func = build_kernel(source)
        result = compile_function(func, config)
        verify_function(func)
        outcome = compare_runs(reference, (module, func), args={"i": 2})
        assert outcome.equivalent, outcome.detail
        if config.enabled:
            assert result.report.num_vectorized == 1

    def test_scrambled_loop_needs_lslp(self):
        """A loop whose body alternates commutative operand order per
        parity — after unrolling, only LSLP recovers the isomorphism."""
        source = """
long A[1024], B[1024], C[1024];
void kernel(long i) {
    for (long j = 0; j < 2; j = j + 1) {
        A[4*i + 2*j + 0] = (B[4*i + 2*j + 0] << 1) & (C[4*i + 2*j + 0] << 2);
        A[4*i + 2*j + 1] = (C[4*i + 2*j + 1] << 3) & (B[4*i + 2*j + 1] << 4);
    }
}
"""
        reference = build_kernel(source)
        slp_module, slp_func = build_kernel(source)
        slp_result = compile_function(slp_func, VectorizerConfig.slp())
        lslp_module, lslp_func = build_kernel(source)
        lslp_result = compile_function(lslp_func, VectorizerConfig.lslp())
        assert lslp_result.static_cost < slp_result.static_cost
        outcome = compare_runs(reference, (lslp_module, lslp_func),
                               args={"i": 3})
        assert outcome.equivalent, outcome.detail

    def test_unrolled_loop_vectorizes_four_wide(self):
        module, func = build_kernel(TestUnroll.CONST_LOOP)
        compile_function(func, VectorizerConfig.lslp())
        loads = [i for i in func.entry if i.opcode == "load"]
        assert len(loads) == 1
        assert loads[0].type.is_vector
        assert loads[0].type.count == 4
