"""Targeted tests for smaller utilities not covered elsewhere."""

import pytest

from repro.experiments import FigureTable, render_series
from repro.ir import (
    Argument,
    BinaryOperator,
    Constant,
    ensure_names,
    Function,
    I64,
    IRBuilder,
    Use,
)
from repro.slp import GatherNode, SLPGraph, VectorizableNode
from tests.conftest import build_kernel


class TestUse:
    def test_get_and_set(self):
        x = Argument(I64, "x")
        y = Argument(I64, "y")
        add = BinaryOperator("add", x, y)
        use = x.uses[0]
        assert isinstance(use, Use)
        assert use.get() is x
        z = Argument(I64, "z")
        use.set(z)
        assert add.operands[0] is z
        assert x.num_uses == 0


class TestEnsureNames:
    def test_names_assigned_to_anonymous_values(self):
        func = Function("f", [("i", I64)])
        block = func.add_block("entry")
        inst = BinaryOperator("add", func.argument("i"), Constant(I64, 1))
        block.append(inst)  # bypass the builder: no name assigned
        assert inst.name == ""
        ensure_names(func)
        assert inst.name != ""


class TestFigureTable:
    def test_row_for_missing_key(self):
        table = FigureTable("F", "t", ["k", "v"])
        table.add_row(k="a", v=1)
        with pytest.raises(KeyError):
            table.row_for("k", "missing")

    def test_column_extraction(self):
        table = FigureTable("F", "t", ["k", "v"])
        table.add_row(k="a", v=1)
        table.add_row(k="b", v=2)
        assert table.column("v") == [1, 2]

    def test_none_renders_as_dash(self):
        table = FigureTable("F", "t", ["k", "v"])
        table.add_row(k="a", v=None)
        assert "-" in table.render()

    def test_render_series(self):
        text = render_series("speedups", ["SLP", "LSLP"], [1.5, 2.0])
        assert "SLP=1.500" in text
        assert "LSLP=2.000" in text


class TestGraphUtilities:
    def _graph(self):
        module, func = build_kernel("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i + 0];
    A[i + 1] = B[i + 1];
}
""")
        stores = [inst for inst in func.entry if inst.opcode == "store"]
        loads = [inst for inst in func.entry if inst.opcode == "load"]
        graph = SLPGraph()
        root = VectorizableNode(stores)
        graph.add(root)
        child = VectorizableNode(loads)
        graph.add(child)
        root.children = [child]
        graph.root = root
        return graph, stores, loads

    def test_dump_is_indented(self):
        graph, stores, loads = self._graph()
        dump = graph.dump()
        lines = dump.splitlines()
        assert lines[0].startswith("store")
        assert lines[1].startswith("  load")

    def test_existing_node_lookup(self):
        graph, stores, loads = self._graph()
        assert graph.existing_node(loads) is graph.nodes[1]
        assert graph.existing_node([loads[1], loads[0]]) is None

    def test_vector_instructions_deduplicated(self):
        graph, stores, loads = self._graph()
        insts = graph.vector_instructions()
        assert len(insts) == 4
        assert len({id(i) for i in insts}) == 4

    def test_gather_node_is_splat(self):
        x = Argument(I64, "x")
        y = Argument(I64, "y")
        assert GatherNode([x, x]).is_splat
        assert not GatherNode([x, y]).is_splat

    def test_node_requires_two_lanes(self):
        x = Argument(I64, "x")
        with pytest.raises(ValueError):
            GatherNode([x])


class TestKernelDefaults:
    def test_default_args(self):
        from repro.kernels import Kernel

        kernel = Kernel(
            name="t", source="long A[8];\nvoid kernel(long i) { A[i] = 1; }",
            origin="test", description="d",
        )
        assert kernel.default_args == {"i": 8}
        module, func = kernel.build()
        assert func.name == "kernel"
