"""Module-wide plan selection and register-pressure costing.

Four guarantees:

* **Never worse**: without budget caps ``module-greedy`` matches
  per-block ``greedy-savings`` exactly (candidates from different
  blocks never conflict, so pooling cannot change the picks); under a
  shared ``max_select_subsets`` budget the module-wide kernels show
  where global ordering strictly wins.
* **Determinism**: the module phase produces byte-identical reports,
  IR and plan-dump streams whether the batch runs serially or across
  pool workers.
* **Pressure**: the Sethi–Ullman penalty rejects over-subscribed plans
  on small-register-file targets, the rejection is visible in the plan
  dump as ``reg-pressure``, and the apply-phase sweep never resurrects
  a pressure-rejected plan.
* **Cache keys**: configs differing only in ``plan_select`` or
  ``reg_pressure_weight`` never share a cache entry; the pure
  observability ``capture_plans`` flag never splits one.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings

from repro.costmodel.targets import few_registers, skylake_like
from repro.interp import compare_runs
from repro.ir import verify_function
from repro.kernels import (
    ALL_KERNELS,
    MODULE_SELECT_BUDGET,
    MODULEWIDE_KERNELS,
    OVERLAP_KERNELS,
)
from repro.obs import metrics, records
from repro.obs.records import ListSink
from repro.opt.pipelines import compile_module
from repro.robustness import Budget
from repro.service import CompilationService, job_for_kernel
from repro.slp import VectorizerConfig
from repro.slp.pressure import register_excess
from tests.conftest import build_kernel
from tests.test_property_differential import kernels

MODULE_MODES = ("module-greedy", "module-exhaustive")
SELECT_BUDGET = Budget(max_select_subsets=MODULE_SELECT_BUDGET)


def _config(mode, budget=None, weight=0):
    config = replace(VectorizerConfig.lslp(), plan_select=mode)
    if budget is not None:
        config = replace(config, budget=budget)
    if weight:
        config = replace(config, reg_pressure_weight=weight)
    return config


def _compile(kernel, mode, budget=None, target=None, weight=0):
    module, _ = kernel.build()
    results = compile_module(module, _config(mode, budget, weight),
                             target)
    cost = sum(r.static_cost for r in results)
    vectorized = sum(r.report.num_vectorized for r in results)
    return module, cost, vectorized


# ---------------------------------------------------------------------------
# Never worse than per-block selection
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(source=kernels())
def test_module_selection_never_worse_property(source):
    """With no budget, pooling cannot lose to per-block selection —
    candidates in different blocks never conflict, so the module-wide
    greedy pass makes the same picks."""
    total = {}
    for mode in ("greedy-savings",) + MODULE_MODES:
        module = build_kernel(source)[0]
        results = compile_module(module, _config(mode))
        total[mode] = sum(r.static_cost for r in results)
    assert total["module-greedy"] <= total["greedy-savings"], source
    assert total["module-exhaustive"] <= total["module-greedy"], source


@pytest.mark.parametrize(
    "kernel",
    list(ALL_KERNELS.values())[:4] + OVERLAP_KERNELS,
    ids=lambda k: k.name,
)
def test_module_matches_per_block_without_budget(kernel):
    _, per_block, _ = _compile(kernel, "greedy-savings")
    for mode in MODULE_MODES:
        _, cost, _ = _compile(kernel, mode)
        assert cost == per_block


@pytest.mark.parametrize("kernel", MODULEWIDE_KERNELS,
                         ids=lambda k: k.name)
def test_module_selection_wins_under_shared_budget(kernel):
    """The acceptance bar: one shared selection budget, spent in block
    order by per-block greedy-savings and by projected savings by the
    module selector — the module-wide kernels are built so the global
    ordering strictly wins."""
    _, legacy, _ = _compile(kernel, "legacy", SELECT_BUDGET)
    _, greedy, _ = _compile(kernel, "greedy-savings", SELECT_BUDGET)
    _, module, _ = _compile(kernel, "module-greedy", SELECT_BUDGET)
    _, exhaustive, _ = _compile(kernel, "module-exhaustive",
                                SELECT_BUDGET)
    assert greedy <= legacy
    assert module < greedy
    assert exhaustive <= module


@pytest.mark.parametrize("kernel", MODULEWIDE_KERNELS,
                         ids=lambda k: k.name)
def test_module_selection_preserves_semantics(kernel):
    reference = build_kernel(kernel.source)
    for mode in MODULE_MODES:
        module, _, _ = _compile(kernel, mode, SELECT_BUDGET)
        for func in module.functions.values():
            verify_function(func)
        outcome = compare_runs(
            reference, (module, module.get_function(kernel.entry)),
            args=dict(kernel.default_args), seed=7,
        )
        assert outcome.equivalent, outcome.detail


# ---------------------------------------------------------------------------
# Determinism: serial and parallel module phases are byte-identical
# ---------------------------------------------------------------------------


def _module_jobs():
    return [
        job_for_kernel(kernel, _config("module-greedy", SELECT_BUDGET),
                       capture_plans=True)
        for kernel in MODULEWIDE_KERNELS
    ]


def _fingerprint(batch):
    return [
        (r.job.name, r.report_json, r.ir_text, r.static_cost,
         json.dumps(r.plans, sort_keys=True))
        for r in batch.results
    ]


def test_module_phase_serial_parallel_identical():
    serial = CompilationService(jobs=1).compile_batch(_module_jobs())
    parallel = CompilationService(jobs=4).compile_batch(_module_jobs())
    assert _fingerprint(serial) == _fingerprint(parallel)


def test_batch_plan_dump_reemitted_in_submission_order():
    """Worker-captured plan entries reach the active plan sink after
    the batch, in submission order — so ``--plan-dump`` through the
    pool is byte-identical to a serial run."""
    streams = []
    for jobs in (1, 4):
        sink: list[dict] = []
        records.set_plan_sink(sink)
        try:
            batch = CompilationService(jobs=jobs).compile_batch(
                _module_jobs()
            )
        finally:
            records.set_plan_sink(None)
        expected = [entry for r in batch.results for entry in r.plans]
        assert sink == expected
        assert sink, "module mode must dump candidate plans"
        streams.append(json.dumps(sink, sort_keys=True))
    assert streams[0] == streams[1]


# ---------------------------------------------------------------------------
# Observability: every candidate's verdict is visible
# ---------------------------------------------------------------------------


def test_module_dump_covers_every_candidate_with_verdict():
    kernel = MODULEWIDE_KERNELS[0]
    plans: list[dict] = []
    records.set_plan_sink(plans)
    try:
        _compile(kernel, "module-greedy", SELECT_BUDGET)
    finally:
        records.set_plan_sink(None)
    assert plans
    seen = set()
    for entry in plans:
        assert entry["mode"] == "module-greedy"
        assert entry["outcome"] in ("applied", "rejected")
        assert entry["reason"] is not None
        key = (entry["function"], entry["block"], entry["plan_id"])
        assert key not in seen, f"duplicate verdict for {key}"
        seen.add(key)
    applied = [e for e in plans if e["outcome"] == "applied"]
    assert applied, kernel.name


def test_module_select_record_and_metrics():
    sink = ListSink()
    records.set_sink(sink)
    metrics.set_publishing(True)
    try:
        _compile(MODULEWIDE_KERNELS[0], "module-greedy", SELECT_BUDGET)
        snap = metrics.registry().snapshot()
    finally:
        metrics.set_publishing(False)
        records.set_sink(None)
    selects = [r for r in sink.records
               if r["type"] == "module_select"]
    assert len(selects) == 1
    assert selects[0]["mode"] == "module-greedy"
    assert selects[0]["candidates"] >= selects[0]["selected"] > 0
    assert snap["plan.module.functions"] == 2
    assert snap["plan.module.candidates"] > 0
    assert snap["plan.module.selected"] > 0


# ---------------------------------------------------------------------------
# Register pressure
# ---------------------------------------------------------------------------


def test_register_excess_is_clamped():
    assert register_excess(3, 16) == 0
    assert register_excess(3, 3) == 0
    assert register_excess(3, 1) == 2


@pytest.mark.parametrize("mode", ("greedy-savings",) + MODULE_MODES)
def test_pressure_rejection_on_small_register_file(mode):
    """On a one-register target with a heavy penalty, every plan whose
    estimate exceeds the file is rejected with an explicit
    ``reg-pressure`` verdict and the sweep leaves the block scalar."""
    kernel = OVERLAP_KERNELS[0]
    plans: list[dict] = []
    records.set_plan_sink(plans)
    try:
        _, cost, vectorized = _compile(kernel, mode,
                                       target=few_registers(),
                                       weight=100)
    finally:
        records.set_plan_sink(None)
    assert cost == 0 and vectorized == 0
    reasons = {e["reason"] for e in plans
               if e["outcome"] == "rejected"}
    assert "reg-pressure" in reasons
    for entry in plans:
        assert entry["reg_excess"] == register_excess(
            entry["reg_pressure"], few_registers().desc.vector_registers
        )


def test_pressure_weight_zero_is_pressure_blind():
    kernel = OVERLAP_KERNELS[0]
    _, cost, vectorized = _compile(kernel, "greedy-savings",
                                   target=few_registers())
    assert cost < 0 and vectorized > 0


def test_pressure_excess_zero_on_big_register_file():
    plans: list[dict] = []
    records.set_plan_sink(plans)
    try:
        _compile(OVERLAP_KERNELS[0], "greedy-savings",
                 target=skylake_like(), weight=100)
    finally:
        records.set_plan_sink(None)
    assert plans
    for entry in plans:
        assert entry["reg_pressure"] >= 1
        assert entry["reg_excess"] == 0
        assert entry["reason"] != "reg-pressure"


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


def test_cache_key_covers_selection_knobs():
    kernel = list(ALL_KERNELS.values())[0]
    base = job_for_kernel(kernel, VectorizerConfig.lslp())
    keys = {base.cache_key()}
    for mode in ("greedy-savings", "exhaustive") + MODULE_MODES:
        job = job_for_kernel(
            kernel, replace(VectorizerConfig.lslp(), plan_select=mode)
        )
        key = job.cache_key()
        assert key not in keys, f"{mode} shares a cache entry"
        keys.add(key)
    weighted = job_for_kernel(
        kernel, replace(VectorizerConfig.lslp(), reg_pressure_weight=2)
    )
    assert weighted.cache_key() not in keys


def test_cache_key_ignores_plan_capture():
    kernel = list(ALL_KERNELS.values())[0]
    config = _config("module-greedy", SELECT_BUDGET)
    plain = job_for_kernel(kernel, config)
    captured = job_for_kernel(kernel, config, capture_plans=True)
    assert plain.cache_key() == captured.cache_key()


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_batch_defaults_to_greedy_savings():
    """The batch service promotes greedy-savings to its default;
    ``lslp compile`` keeps the paper-faithful legacy driver."""
    from repro.cli import build_parser

    parser = build_parser()
    assert parser.parse_args(
        ["batch", "catalog"]
    ).plan_select == "greedy-savings"
    assert parser.parse_args(
        ["compile", "k.c"]
    ).plan_select == "legacy"
    # and legacy stays one flag away for the batch path
    assert parser.parse_args(
        ["batch", "catalog", "--plan-select", "legacy"]
    ).plan_select == "legacy"


def test_cli_batch_module_greedy_plan_dump(tmp_path, capsys):
    from repro.cli import main

    (tmp_path / "skew.c").write_text(MODULEWIDE_KERNELS[0].source)
    dump = tmp_path / "plans.jsonl"
    rc = main([
        "batch", str(tmp_path), "--configs", "lslp",
        "--plan-select", "module-greedy",
        "--max-select-subsets", str(MODULE_SELECT_BUDGET),
        "--plan-dump", str(dump), "--cache", "off",
    ])
    capsys.readouterr()
    assert rc == 0
    entries = [json.loads(line)
               for line in dump.read_text().splitlines()]
    assert entries, "batch --plan-dump produced no plans"
    assert {e["mode"] for e in entries} == {"module-greedy"}
    assert {e["function"] for e in entries} == {"decoy", "kernel"}
    assert all("outcome" in e and "reg_pressure" in e
               for e in entries)


def test_cli_compile_accepts_module_mode_and_pressure(tmp_path,
                                                      capsys):
    from repro.cli import main

    path = tmp_path / "k.c"
    path.write_text(OVERLAP_KERNELS[0].source)
    rc = main(["compile", str(path), "--plan-select", "module-greedy",
               "--reg-pressure-weight", "1", "--report"])
    capsys.readouterr()
    assert rc == 0
