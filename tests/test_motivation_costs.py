"""The paper's worked examples (Figures 2-4) with their exact costs.

These are the headline qualitative results of the paper:

* Figure 2 (load address mismatch): SLP cost 0 → not vectorized;
  LSLP cost −6 → vectorized.
* Figure 3 (opcode mismatch): SLP not profitable; LSLP cost −2.
* Figure 4 (associativity mismatch): LSLP cost −10 via a multi-node.

Known deviation (documented in EXPERIMENTS.md): on Figures 3/4 our
vanilla-SLP cost is 0 where the paper reports +4 / −2 — a different
account of the same outcome (vanilla SLP does not vectorize Figure 3 and
only partially handles Figure 4; LSLP costs match the paper exactly).
"""

import pytest

from repro.kernels import (
    MOTIVATION_LOADS,
    MOTIVATION_MULTI,
    MOTIVATION_OPCODES,
)
from repro.opt import compile_function
from repro.slp import VectorizerConfig


def run(kernel, config):
    _, func = kernel.build()
    return compile_function(func, config)


class TestFigure2:
    def test_slp_cost_zero_not_vectorized(self):
        result = run(MOTIVATION_LOADS, VectorizerConfig.slp())
        assert result.report.num_vectorized == 0
        (tree,) = result.report.trees
        assert tree.cost == 0
        assert not tree.vectorized

    def test_slp_nr_also_fails(self):
        result = run(MOTIVATION_LOADS, VectorizerConfig.slp_nr())
        assert result.report.num_vectorized == 0

    def test_lslp_cost_minus_6_vectorized(self):
        result = run(MOTIVATION_LOADS, VectorizerConfig.lslp())
        assert result.report.num_vectorized == 1
        assert result.static_cost == -6


class TestFigure3:
    def test_slp_not_vectorized(self):
        result = run(MOTIVATION_OPCODES, VectorizerConfig.slp())
        assert result.report.num_vectorized == 0

    def test_lslp_cost_minus_2_vectorized(self):
        result = run(MOTIVATION_OPCODES, VectorizerConfig.lslp())
        assert result.report.num_vectorized == 1
        assert result.static_cost == -2


class TestFigure4:
    def test_slp_does_not_fully_vectorize(self):
        result = run(MOTIVATION_MULTI, VectorizerConfig.slp())
        # vanilla SLP must do strictly worse than LSLP's -10
        assert result.static_cost > -10

    def test_lslp_cost_minus_10_vectorized(self):
        result = run(MOTIVATION_MULTI, VectorizerConfig.lslp())
        assert result.report.num_vectorized == 1
        assert result.static_cost == -10

    def test_multi_node_is_what_makes_it_work(self):
        result = run(
            MOTIVATION_MULTI,
            VectorizerConfig.lslp(multi_node_max_size=1,
                                  name="LSLP-Multi1"),
        )
        assert result.static_cost > -10


class TestConfigOrdering:
    """LSLP must never be worse than SLP, and SLP never worse than
    SLP-NR, on the motivation kernels' accepted cost."""

    @pytest.mark.parametrize("kernel", [
        MOTIVATION_LOADS, MOTIVATION_OPCODES, MOTIVATION_MULTI,
    ], ids=lambda k: k.name)
    def test_lslp_at_least_as_good_as_slp(self, kernel):
        slp = run(kernel, VectorizerConfig.slp()).static_cost
        lslp = run(kernel, VectorizerConfig.lslp()).static_cost
        assert lslp <= slp
