"""Tests for the unified observability layer (``repro.obs``).

Covers the four pillars and their CLI wiring: span nesting/ordering
determinism, metrics-registry isolation between compiles, JSONL record
schema round-trips, interpreter-profile cycle attribution, SLP-graph
DOT export, and the end-to-end ``lslp run`` acceptance command.
"""

from __future__ import annotations

import io
import json
import re

import pytest

import repro.obs as obs
from repro.cli import main
from repro.costmodel.targets import skylake_like
from repro.interp.interpreter import Interpreter
from repro.interp.memory import MemoryImage
from repro.obs import InterpProfile, ListSink, metrics, records, tracing
from repro.obs.records import validate_record
from repro.obs.validate import (
    validate_chrome_trace,
    validate_remarks_jsonl,
    validate_stats_json,
)
from repro.opt.pipelines import compile_function
from repro.slp.vectorizer import VectorizerConfig

from .conftest import build_kernel

KERNEL = """
long A[1024], B[1024], C[1024];
void kernel(long i) {
    A[i + 0] = (B[i + 0] << 1) & (C[i + 0] << 2);
    A[i + 1] = (C[i + 1] << 3) & (B[i + 1] << 4);
}
"""


def _compile_traced():
    """One guarded LSLP compile with tracing on; returns the tracer."""
    tracer = tracing.install()
    try:
        _, func = build_kernel(KERNEL)
        compile_function(func, VectorizerConfig.lslp(), skylake_like())
    finally:
        tracing.uninstall()
    return tracer


class TestTracing:
    def test_span_nesting(self):
        tracer = _compile_traced()
        names = [s.name for s in tracer.spans]
        assert "frontend.parse" in names
        assert "frontend.lower" in names
        assert "compile.function" in names
        assert "opt.slp" in names
        assert "slp.build_graph" in names
        assert "slp.codegen" in names
        # slp stages nest under the slp pass, which nests under the
        # compile.function root
        by_index = {s.index: s for s in tracer.spans}
        build = next(s for s in tracer.spans
                     if s.name == "slp.build_graph")
        chain = []
        node = build
        while node.parent is not None:
            node = by_index[node.parent]
            chain.append(node.name)
        assert "slp.function" in chain
        assert "opt.slp" in chain
        assert "compile.function" in chain

    def test_span_content_is_deterministic(self):
        first = _compile_traced().render_tree(times=False)
        second = _compile_traced().render_tree(times=False)
        assert first == second
        assert first  # non-empty

    def test_chrome_export_validates(self):
        tracer = _compile_traced()
        text = tracer.to_chrome()
        assert validate_chrome_trace(text, ["slp", "opt"]) == []
        data = json.loads(text)
        assert data["displayTimeUnit"] == "ms"
        for event in data["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_disabled_span_is_noop(self):
        assert tracing.active() is None
        with obs.span("anything", k=1) as handle:
            handle.set(more=2)
        assert tracing.active() is None

    def test_unwind_tolerated(self):
        tracer = tracing.install()
        try:
            with pytest.raises(RuntimeError):
                with obs.span("outer"):
                    with obs.span("inner"):
                        raise RuntimeError("boom")
            with obs.span("after"):
                pass
        finally:
            tracing.uninstall()
        after = next(s for s in tracer.spans if s.name == "after")
        assert after.parent is None  # stack fully unwound


class TestMetrics:
    def test_publication_guarded_by_flag(self):
        metrics.add("slp.trees_built", 5)
        assert len(metrics.registry()) == 0
        metrics.set_publishing(True)
        metrics.add("slp.trees_built", 5)
        assert metrics.registry().counter("slp.trees_built").value == 5

    def test_reset_isolates_compiles(self):
        metrics.set_publishing(True)
        _, func = build_kernel(KERNEL)
        compile_function(func, VectorizerConfig.lslp(), skylake_like())
        first = metrics.registry().snapshot()
        assert first["slp.trees_built"] == 1
        assert first["lookahead.evals"] > 0
        metrics.reset()
        assert len(metrics.registry()) == 0
        _, func = build_kernel(KERNEL)
        compile_function(func, VectorizerConfig.lslp(), skylake_like())
        assert metrics.registry().snapshot() == first

    def test_snapshot_is_name_sorted_and_json_canonical(self):
        registry = metrics.MetricsRegistry()
        registry.counter("z.last").inc(2)
        registry.counter("a.first").inc(1)
        registry.histogram("m.hist").observe(3.0)
        assert list(registry.snapshot()) == ["a.first", "m.hist", "z.last"]
        text = registry.to_json()
        assert text == registry.to_json()
        assert validate_stats_json(text, ["a.first", "m.hist"]) == []

    def test_type_mismatch_rejected(self):
        registry = metrics.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            registry.gauge("x")


class TestRecords:
    def _vectorize_with_sink(self, config=None):
        sink = ListSink()
        records.set_sink(sink)
        try:
            _, func = build_kernel(KERNEL)
            compile_function(func, config or VectorizerConfig.lslp(),
                             skylake_like())
        finally:
            records.set_sink(None)
        return sink.records

    def test_decision_records_validate(self):
        emitted = self._vectorize_with_sink()
        assert emitted
        for record in emitted:
            assert validate_record(record) == []
        types = {r["type"] for r in emitted}
        assert {"seed", "group", "reorder"} <= types

    def test_records_carry_function_and_pass_context(self):
        for record in self._vectorize_with_sink():
            assert record["function"] == "kernel"
            assert record["pass"] == "slp"
            assert record["config"] == "LSLP"

    def test_group_record_carries_cost_delta(self):
        groups = [r for r in self._vectorize_with_sink()
                  if r["type"] == "group"]
        assert groups and groups[0]["vectorized"] is True
        assert groups[0]["cost"] < 0  # profitable: negative delta

    def test_rejected_group_has_reason(self):
        groups = [
            r for r in self._vectorize_with_sink(VectorizerConfig.slp())
            if r["type"] == "group"
        ]
        assert groups and groups[0]["vectorized"] is False
        assert groups[0]["reason"] == "cost"

    def test_jsonl_round_trip(self):
        stream = io.StringIO()
        sink = records.JsonlSink(stream)
        records.set_sink(sink)
        try:
            _, func = build_kernel(KERNEL)
            compile_function(func, VectorizerConfig.lslp(),
                             skylake_like())
        finally:
            records.set_sink(None)
        text = stream.getvalue()
        assert sink.emitted == len(text.splitlines())
        assert validate_remarks_jsonl(text, ["seed", "group"]) == []
        # canonical form: every line re-serializes to itself
        for line in text.splitlines():
            record = json.loads(line)
            assert json.dumps(record, sort_keys=True,
                              separators=(",", ":")) == line

    def test_emit_without_sink_is_noop(self):
        assert records.emit("seed", kind="store", vector_length=2) is None


class TestInterpProfile:
    def test_profile_totals_match_execution_result(self):
        module, func = build_kernel(KERNEL)
        compile_function(func, VectorizerConfig.lslp(), skylake_like())
        memory = MemoryImage(module)
        memory.randomize(seed=0)
        profile = InterpProfile()
        result = Interpreter(memory, skylake_like()).run(
            func, {"i": 0}, profile=profile,
        )
        assert profile.total_cycles == result.cycles
        assert profile.total_instructions == result.instructions_retired
        assert dict(profile.opcode_counts) == dict(result.opcode_counts)

    def test_hot_instructions_are_deterministic(self):
        def run_once():
            module, func = build_kernel(KERNEL)
            memory = MemoryImage(module)
            memory.randomize(seed=0)
            profile = InterpProfile()
            Interpreter(memory, skylake_like()).run(
                func, {"i": 0}, profile=profile,
            )
            return [(r.text, r.count, r.cycles)
                    for r in profile.hot_instructions()]

        first, second = run_once(), run_once()
        assert first == second
        cycles = [c for _, _, c in first]
        assert cycles == sorted(cycles, reverse=True)


class TestGraphDot:
    def _graph(self):
        captured = []
        records.set_graph_sink(captured)
        try:
            _, func = build_kernel(KERNEL)
            compile_function(func, VectorizerConfig.lslp(),
                             skylake_like())
        finally:
            records.set_graph_sink(None)
        assert captured
        return captured[0]

    def test_dot_uses_canonical_handles(self):
        _, _, dot = self._graph()
        assert dot.startswith("digraph")
        assert "%<" not in dot  # raw id handles canonicalized away
        assert re.search(r"%u\d", dot)

    def test_dot_is_deterministic(self):
        first = self._graph()
        second = self._graph()
        assert first == second


class TestCliAcceptance:
    @pytest.fixture
    def kernel_file(self, tmp_path):
        path = tmp_path / "kernel.c"
        path.write_text(KERNEL)
        return str(path)

    def test_run_emits_all_artifacts(self, kernel_file, tmp_path,
                                     capsys):
        trace_path = tmp_path / "t.json"
        remarks_path = tmp_path / "r.jsonl"
        assert main([
            "run", kernel_file, "--arg", "i=0",
            "--trace-out", str(trace_path),
            "--remarks-out", str(remarks_path),
            "--stats=json", "--profile-interp",
        ]) == 0
        out = capsys.readouterr().out

        # the stats JSON is the last stdout line, and interp.cycles in
        # it equals the cycle count the run line reported
        lines = out.strip().splitlines()
        stats = json.loads(lines[-1])
        reported = int(
            re.search(r"(\d+) cycles", out).group(1)
        )
        assert stats["interp.cycles"] == reported
        assert stats["slp.groups_vectorized"] == 1
        assert "== interp profile ==" in out
        assert "hot instructions:" in out

        trace_errors = validate_chrome_trace(
            trace_path.read_text(),
            ["frontend", "opt", "slp", "interp"],
        )
        assert trace_errors == []
        assert validate_remarks_jsonl(
            remarks_path.read_text(), ["group"]
        ) == []

    def test_run_dumps_slp_graph(self, kernel_file, tmp_path, capsys):
        dot_path = tmp_path / "graph.dot"
        assert main([
            "run", kernel_file, "--arg", "i=0",
            "--dump-slp-graph", str(dot_path),
        ]) == 0
        dot = dot_path.read_text()
        assert dot.startswith("digraph")
        assert "store" in dot

    def test_stats_text_block(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "== lslp stats ==" in out
        assert "slp.trees_built" in out

    def test_default_run_has_no_obs_output(self, kernel_file, capsys):
        assert main(["run", kernel_file, "--arg", "i=0"]) == 0
        out = capsys.readouterr().out
        assert "== lslp stats ==" not in out
        assert "== interp profile ==" not in out
        assert not obs.enabled()

    def test_batch_stats_json(self, kernel_file, tmp_path, capsys):
        assert main([
            "batch", str(tmp_path), "--configs", "lslp",
            "--stats=json",
        ]) == 0
        out = capsys.readouterr().out
        stats = json.loads(out.strip().splitlines()[-1])
        assert stats["service.jobs"] == 1
        assert stats["cache.misses"] == 1


class TestReset:
    def test_reset_disables_everything(self):
        tracing.install()
        records.set_sink(ListSink())
        records.set_graph_sink([])
        metrics.set_publishing(True)
        metrics.add("x")
        records.push_context(function="f")
        assert obs.enabled()
        obs.reset()
        assert not obs.enabled()
        assert tracing.active() is None
        assert records.active_sink() is None
        assert len(metrics.registry()) == 0
        # context cleared: records emitted later carry no stale names
        sink = ListSink()
        records.set_sink(sink)
        records.emit("degrade", kind="k", detail="d")
        records.set_sink(None)
        assert sink.records[0]["function"] == ""
