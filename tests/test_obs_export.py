"""Telemetry export: Prometheus/JSON exposition, histogram buckets,
and the cross-process trace stitcher (``repro.obs.export``)."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics, tracing
from repro.obs.export import (
    BREAKER_STATE_VALUES,
    JOB_TRACK_TID,
    SERVICE_PID,
    TraceStitcher,
    prometheus_name,
    render_metrics_json,
    render_prometheus,
    spans_to_payload,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    format_bound,
)
from repro.obs.validate import (
    validate_chrome_trace,
    validate_prometheus_text,
)


# ---------------------------------------------------------------------------
# Histogram buckets (satellite: stable bounds, golden-text pinned)
# ---------------------------------------------------------------------------


def test_default_buckets_are_sorted_and_stable():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] == 0.001
    assert DEFAULT_BUCKETS[-1] == 1000.0


def test_format_bound():
    assert format_bound(0.001) == "0.001"
    assert format_bound(1.0) == "1"
    assert format_bound(2.5) == "2.5"
    assert format_bound(float("inf")) == "+Inf"


def test_histogram_buckets_are_cumulative_with_inclusive_bounds():
    hist = Histogram("h")
    for value in (0.5, 1.0, 3.0):
        hist.observe(value)
    buckets = hist.buckets()
    # ``le`` is inclusive: a sample exactly on a bound counts there.
    assert buckets["0.5"] == 1
    assert buckets["1"] == 2
    assert buckets["2.5"] == 2
    assert buckets["5"] == 3
    assert buckets["1000"] == 3
    assert buckets["+Inf"] == 3
    assert list(buckets)[-1] == "+Inf"
    values = list(buckets.values())
    assert values == sorted(values)  # cumulative => non-decreasing


def test_histogram_overflow_lands_only_in_inf():
    hist = Histogram("h")
    hist.observe(5000.0)
    buckets = hist.buckets()
    assert buckets["1000"] == 0
    assert buckets["+Inf"] == 1


def test_histogram_render_golden_text():
    """The pinned ``render()`` line: summary stats plus only the
    buckets a sample moved, cumulative, ending at ``+Inf``."""
    registry = MetricsRegistry()
    hist = registry.histogram("lat")
    for value in (0.5, 1.0, 3.0):
        hist.observe(value)
    assert registry.render() == (
        "== lslp stats ==\n"
        "lat: count=3 sum=4.5 min=0.5 max=3.0 "
        "| le0.5=1 le1=2 le5=3 le+Inf=3"
    )


def test_histogram_merge_counts_doubles_everything():
    hist = Histogram("h")
    for value in (0.002, 0.3, 2000.0):
        hist.observe(value)
    snapshot = hist.snapshot()
    hist.merge_counts(snapshot)
    assert hist.count == 6
    assert hist.buckets()["0.0025"] == 2
    assert hist.buckets()["+Inf"] == 6
    assert hist.min == 0.002
    assert hist.max == 2000.0


def test_registry_merge_typed_round_trip():
    source = MetricsRegistry()
    source.counter("slp.trees_built").inc(4)
    source.gauge("service.workers").set(2)
    source.histogram("service.job_latency_seconds").observe(0.25)
    payload = source.typed_snapshot()

    target = MetricsRegistry()
    target.merge_typed(payload)
    target.merge_typed(payload)
    snap = target.snapshot()
    assert snap["slp.trees_built"] == 8          # counters add
    assert snap["service.workers"] == 2          # gauges last-write-win
    assert snap["service.job_latency_seconds"]["count"] == 2
    assert snap["service.job_latency_seconds"]["buckets"]["0.25"] == 2


# ---------------------------------------------------------------------------
# Prometheus / JSON exposition
# ---------------------------------------------------------------------------


def test_prometheus_name_mangling():
    assert (prometheus_name("service.job_latency_seconds")
            == "lslp_service_job_latency_seconds")
    assert prometheus_name("a-b/c") == "lslp_a_b_c"
    assert prometheus_name("9lives").startswith("lslp__9")


def test_render_prometheus_golden_text():
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(3)
    registry.gauge("service.workers").set(2)
    assert render_prometheus(registry) == (
        "# HELP lslp_cache_hits_total cache.hits\n"
        "# TYPE lslp_cache_hits_total counter\n"
        "lslp_cache_hits_total 3\n"
        "# HELP lslp_service_workers service.workers\n"
        "# TYPE lslp_service_workers gauge\n"
        "lslp_service_workers 2\n"
    )


def test_render_prometheus_histogram_and_breaker_validate():
    registry = MetricsRegistry()
    hist = registry.histogram("service.job_latency_seconds")
    for value in (0.004, 0.02, 7.5):
        hist.observe(value)
    text = render_prometheus(
        registry,
        breaker_states={"lslp": {"state": "open"},
                        "slp": {"state": "closed"}},
    )
    assert validate_prometheus_text(
        text,
        require_metrics=["lslp_service_job_latency_seconds",
                         "lslp_service_breaker_state"],
    ) == []
    assert ('lslp_service_job_latency_seconds_bucket{le="+Inf"} 3'
            in text)
    assert "lslp_service_job_latency_seconds_count 3" in text
    assert ('lslp_service_breaker_state{shard="lslp"} '
            f"{BREAKER_STATE_VALUES['open']}") in text
    assert ('lslp_service_breaker_state{shard="slp"} '
            f"{BREAKER_STATE_VALUES['closed']}") in text


def test_validate_prometheus_rejects_untyped_and_non_cumulative():
    assert validate_prometheus_text("lslp_orphan 1\n") != []
    broken = (
        "# TYPE lslp_h histogram\n"
        'lslp_h_bucket{le="1"} 5\n'
        'lslp_h_bucket{le="+Inf"} 3\n'
        "lslp_h_count 3\n"
    )
    errors = validate_prometheus_text(broken)
    assert any("cumulative" in error for error in errors)
    no_inf = (
        "# TYPE lslp_h histogram\n"
        'lslp_h_bucket{le="1"} 1\n'
    )
    assert any("+Inf" in error
               for error in validate_prometheus_text(no_inf))


def test_render_metrics_json_is_canonical():
    registry = MetricsRegistry()
    registry.counter("b").inc(1)
    registry.counter("a").inc(2)
    text = render_metrics_json(registry)
    assert text == json.dumps(json.loads(text), sort_keys=True,
                              separators=(",", ":"))
    assert list(json.loads(text)) == ["a", "b"]


# ---------------------------------------------------------------------------
# Span payloads and the trace stitcher
# ---------------------------------------------------------------------------


def test_spans_to_payload_rebases_to_epoch():
    tracer = tracing.install()
    try:
        with tracing.span("unit.outer", k=1):
            with tracing.span("unit.inner"):
                pass
        payload = spans_to_payload(tracer)
    finally:
        tracing.uninstall()
    assert [span["name"] for span in payload] == \
        ["unit.outer", "unit.inner"]
    outer = payload[0]
    assert outer["attrs"] == {"k": 1}
    assert 0.0 <= outer["start"] < 60.0  # epoch-relative, not absolute
    assert outer["wall"] >= 0.0


def _payload(name, start=0.001, attrs=None):
    return {"name": name, "index": 0, "depth": 0, "parent": -1,
            "start": start, "wall": 0.002, "cpu": 0.001,
            "attrs": attrs or {}}


def test_stitcher_lanes_are_first_appearance_stable():
    stitcher = TraceStitcher(base_wall=1000.0)
    assert stitcher.lane_for(4321) == SERVICE_PID + 1
    assert stitcher.lane_for(99) == SERVICE_PID + 2
    assert stitcher.lane_for(4321) == SERVICE_PID + 1
    assert stitcher.worker_lanes == {4321: 2, 99: 3}
    names = [event["args"]["name"] for event in stitcher.events
             if event.get("name") == "process_name"]
    assert names == ["service", "worker-1 (pid 4321)",
                     "worker-2 (pid 99)"]


def test_stitcher_document_validates_and_places_spans():
    stitcher = TraceStitcher(base_wall=1000.0)
    lane = stitcher.lane_for(4321)
    stitcher.add_spans(lane, [_payload("job.attempt",
                                       attrs={"attempt": 1})],
                       wall_base=1000.5,
                       extra_attrs={"job_index": 7})
    stitcher.job_begin(7, "job:k/lslp", 1000.0, 0.1)
    stitcher.job_point(7, "job:k/lslp", "dispatched", 1000.0, 0.2)
    stitcher.job_end(7, "job:k/lslp", 1000.0, 0.9)
    text = stitcher.to_chrome()
    assert validate_chrome_trace(text) == []

    events = json.loads(text)["traceEvents"]
    spans = [event for event in events if event["ph"] == "X"]
    assert len(spans) == 1
    # 0.5s wall skew + 0.001s span offset => 501000us on the timeline
    assert spans[0]["ts"] == pytest.approx(501000.0)
    assert spans[0]["pid"] == lane
    assert spans[0]["args"]["attempt"] == 1
    assert spans[0]["args"]["job_index"] == 7

    arrows = [event for event in events
              if event["ph"] in ("b", "n", "e")]
    assert [event["ph"] for event in arrows] == ["b", "n", "e"]
    assert all(event["id"] == "0x7" for event in arrows)
    assert all(event["pid"] == SERVICE_PID
               and event["tid"] == JOB_TRACK_TID for event in arrows)
    assert arrows[1]["args"]["point"] == "dispatched"


def test_stitcher_metadata_only_trace_counts_as_empty():
    stitcher = TraceStitcher(base_wall=0.0)
    stitcher.lane_for(1234)
    errors = validate_chrome_trace(stitcher.to_chrome())
    assert any("empty" in error for error in errors)
