"""Tests for the scalar optimization passes ("O3")."""

import pytest

from repro.ir import (
    Constant,
    Function,
    GlobalArray,
    I64,
    IRBuilder,
    Module,
    verify_function,
)
from repro.opt import (
    PassManager,
    run_constfold,
    run_cse,
    run_dce,
    run_instcombine,
    scalar_pipeline,
)


def make_env():
    module = Module("m")
    a = module.add_global(GlobalArray("A", I64, 64))
    func = Function("f", [("i", I64)])
    builder = IRBuilder(func.add_block("entry"))
    return module, func, builder, a


class TestConstFold:
    def test_folds_constant_chain(self):
        module, func, builder, a = make_env()
        x = builder.add(builder.i64(2), builder.i64(3))
        y = builder.mul(x, builder.i64(4))
        store = builder.store(y, builder.gep(a, func.argument("i")))
        builder.ret()
        assert run_constfold(func)
        verify_function(func)
        folded = store.value
        assert isinstance(folded, Constant)
        assert folded.value == 20

    def test_preserves_division_by_zero(self):
        module, func, builder, a = make_env()
        div = builder.sdiv(builder.i64(1), builder.i64(0))
        builder.store(div, builder.gep(a, func.argument("i")))
        builder.ret()
        assert not run_constfold(func)
        assert div.parent is not None

    def test_folds_cmp_and_select(self):
        module, func, builder, a = make_env()
        cmp = builder.icmp("slt", builder.i64(1), builder.i64(2))
        sel = builder.select(cmp, builder.i64(10), builder.i64(20))
        store = builder.store(sel, builder.gep(a, func.argument("i")))
        builder.ret()
        run_constfold(func)
        verify_function(func)
        assert isinstance(store.value, Constant)
        assert store.value.value == 10

    def test_no_change_on_symbolic(self):
        module, func, builder, a = make_env()
        x = builder.add(func.argument("i"), builder.i64(1))
        builder.store(x, builder.gep(a, func.argument("i")))
        builder.ret()
        assert not run_constfold(func)


class TestDCE:
    def test_removes_dead_chain(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        x = builder.add(i, builder.i64(1))
        builder.mul(x, builder.i64(2))  # dead
        builder.ret()
        assert run_dce(func)
        verify_function(func)
        assert len(func.entry) == 1  # only ret

    def test_keeps_stores(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        builder.store(builder.i64(1), builder.gep(a, i))
        builder.ret()
        assert not run_dce(func)
        assert len(func.entry) == 3

    def test_removes_dead_loads(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        builder.load(builder.gep(a, i))  # dead load: no side effects here
        builder.ret()
        assert run_dce(func)
        assert len(func.entry) == 1


class TestCSE:
    def test_merges_identical_geps_and_adds(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        x1 = builder.add(i, builder.i64(1))
        x2 = builder.add(i, builder.i64(1))
        builder.store(x1, builder.gep(a, x1))
        builder.store(x2, builder.gep(a, x2))
        builder.ret()
        assert run_cse(func)
        run_dce(func)
        verify_function(func)
        adds = [inst for inst in func.entry if inst.opcode == "add"]
        assert len(adds) == 1

    def test_does_not_merge_loads(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        ptr = builder.gep(a, i)
        l1 = builder.load(ptr)
        builder.store(builder.add(l1, builder.i64(1)), ptr)
        l2 = builder.load(ptr)  # after a store: must not merge with l1
        builder.store(l2, builder.gep(a, builder.add(i, builder.i64(1))))
        builder.ret()
        run_cse(func)
        loads = [inst for inst in func.entry if inst.opcode == "load"]
        assert len(loads) == 2

    def test_commutative_operands_merge_swapped(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        j = builder.add(i, builder.i64(7))
        x1 = builder.mul(i, j)
        x2 = builder.mul(j, i)
        builder.store(builder.add(x1, x2), builder.gep(a, i))
        builder.ret()
        assert run_cse(func)
        muls = [inst for inst in func.entry if inst.opcode == "mul"]
        assert len(muls) == 1

    def test_non_commutative_not_merged_swapped(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        j = builder.add(i, builder.i64(7))
        x1 = builder.sub(i, j)
        x2 = builder.sub(j, i)
        builder.store(builder.add(x1, x2), builder.gep(a, i))
        builder.ret()
        run_cse(func)
        subs = [inst for inst in func.entry if inst.opcode == "sub"]
        assert len(subs) == 2


class TestInstCombine:
    @pytest.mark.parametrize("opcode,identity", [
        ("add", 0), ("sub", 0), ("shl", 0), ("or", 0), ("xor", 0),
        ("mul", 1),
    ])
    def test_identity_elements(self, opcode, identity):
        module, func, builder, a = make_env()
        i = func.argument("i")
        x = builder.binop(opcode, i, builder.i64(identity))
        builder.store(x, builder.gep(a, i))
        builder.ret()
        assert run_instcombine(func)
        store = [inst for inst in func.entry if inst.opcode == "store"][0]
        assert store.value is i

    def test_mul_by_zero(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        x = builder.mul(i, builder.i64(0))
        builder.store(x, builder.gep(a, i))
        builder.ret()
        run_instcombine(func)
        store = [inst for inst in func.entry if inst.opcode == "store"][0]
        assert isinstance(store.value, Constant)
        assert store.value.value == 0

    def test_sub_self_is_zero(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        x = builder.sub(i, i)
        builder.store(x, builder.gep(a, i))
        builder.ret()
        run_instcombine(func)
        store = [inst for inst in func.entry if inst.opcode == "store"][0]
        assert isinstance(store.value, Constant)
        assert store.value.value == 0

    def test_and_self_is_self(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        x = builder.and_(i, i)
        builder.store(x, builder.gep(a, i))
        builder.ret()
        run_instcombine(func)
        store = [inst for inst in func.entry if inst.opcode == "store"][0]
        assert store.value is i

    def test_constants_canonicalize_right(self):
        module, func, builder, a = make_env()
        i = func.argument("i")
        x = builder.add(builder.i64(5), i)
        builder.store(x, builder.gep(a, i))
        builder.ret()
        assert run_instcombine(func)
        assert isinstance(x.rhs, Constant)
        assert x.lhs is i


class TestPassManager:
    def test_records_timings(self):
        module, func, builder, a = make_env()
        builder.add(func.argument("i"), builder.i64(0))
        builder.ret()
        manager = scalar_pipeline()
        result = manager.run_function(func)
        assert len(result.timings) == len(manager.pass_names)
        assert result.total_seconds >= 0
        assert result.seconds_for("dce") >= 0

    def test_pipeline_cleans_frontend_noise(self):
        from tests.conftest import build_kernel

        module, func = build_kernel("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i + 0] + 0;
}
""")
        scalar_pipeline().run_function(func)
        verify_function(func)
        opcodes = [inst.opcode for inst in func.entry]
        # add i+0 folded away; single gep per array; direct store of load
        assert opcodes.count("add") == 0


class TestVerifyEach:
    def test_pipeline_verifies_between_passes(self):
        from tests.conftest import build_kernel
        from repro.opt import compile_function
        from repro.slp import VectorizerConfig
        from repro.kernels import EVALUATION_KERNELS

        for kernel in EVALUATION_KERNELS:
            _, func = kernel.build()
            compile_function(func, VectorizerConfig.lslp(),
                             verify_each=True)

    def test_broken_pass_is_named(self):
        from repro.ir import Function, I64, IRBuilder, VerificationError
        from repro.opt import PassManager

        func = Function("f", [("i", I64)])
        builder = IRBuilder(func.add_block("entry"))
        a = builder.add(func.argument("i"), builder.i64(1))
        builder.add(a, builder.i64(2))
        builder.ret()

        def evil_pass(f):
            block = f.entry
            first = block.instructions[0]
            block.remove(first)
            block.append(first)  # def now after use
            return True

        manager = PassManager(verify_each=True).add("evil", evil_pass)
        with pytest.raises(VerificationError, match="after pass 'evil'"):
            manager.run_function(func)
