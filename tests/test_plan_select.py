"""The plan/select/apply refactor's contract tests.

Two halves:

* **Differential**: ``--plan-select=legacy`` (the default) must be
  byte-for-byte the pre-refactor greedy driver.  A frozen copy of that
  driver lives here as :class:`ReferenceGreedy`; the catalog kernels and
  hypothesis-generated programs are compiled both ways and the final IR,
  tree records and build stats must match exactly.
* **Selection**: ``greedy-savings`` never produces a worse total static
  cost than ``legacy`` (and ``exhaustive`` never worse than
  ``greedy-savings``), every candidate plan is visible through the
  plan/select/reject records and the plan sink, and the budget knobs
  (seed-abort remark, plan-selection subset cap) surface as remarks.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings

from repro.analysis.aliasing import AliasAnalysis
from repro.analysis.scev import ScalarEvolution
from repro.costmodel.targets import skylake_like
from repro.ir import print_function
from repro.obs import records
from repro.obs.records import ListSink
from repro.opt import compile_function
from repro.opt.dce import run_dce
from repro.opt.pipelines import scalar_pipeline
from repro.robustness.budget import Budget
from repro.kernels import ALL_KERNELS, OVERLAP_KERNELS
from repro.service.serde import tree_from_dict, tree_to_dict
from repro.slp import VectorizerConfig
from repro.slp.builder import BuildStats, GraphBuilder
from repro.slp.codegen import VectorCodeGen
from repro.slp.cost import compute_graph_cost
from repro.slp.lookahead import LookAheadContext
from repro.slp.reductions import emit_reduction, plan_reduction
from repro.slp.seeds import (
    SeedGroup,
    collect_reduction_seeds,
    collect_store_seeds,
)
from tests.conftest import build_kernel
from tests.test_property_differential import kernels

CONFIGS = [
    VectorizerConfig.slp_nr(),
    VectorizerConfig.slp(),
    VectorizerConfig.lslp(),
]


# ---------------------------------------------------------------------------
# The frozen pre-refactor greedy driver
# ---------------------------------------------------------------------------


class ReferenceGreedy:
    """Frozen copy of the greedy in-place driver the plan/select/apply
    pipeline replaced: per seed try full width, descend to halves only
    on rejection, then the reduction loop.  Kept verbatim (minus
    observability) as the oracle for ``--plan-select=legacy``."""

    def __init__(self, config, target=None):
        self.config = config
        self.target = target if target is not None else skylake_like()
        self.trees: list[tuple] = []
        self.stats = BuildStats()

    def run_function(self, func) -> None:
        for block in func.blocks:
            self._run_block(block)

    def _run_block(self, block) -> None:
        ctx = LookAheadContext(ScalarEvolution())
        aa = AliasAnalysis(ctx.scev)
        for seed in collect_store_seeds(block, ctx.scev, self.target):
            if not seed.alive():
                continue
            self._vectorize_seed(seed, ctx, aa)
        if self.config.enable_reductions:
            for seed in collect_reduction_seeds(block):
                if not seed.alive():
                    continue
                record = self._try_reduction(seed, ctx, aa)
                if record is not None:
                    self.trees.append(record)

    def _vectorize_seed(self, seed, ctx, aa) -> None:
        record = self._try_store_tree(seed, ctx, aa)
        self.trees.append(record)
        vectorized = record[3]
        if vectorized or seed.vector_length < 4:
            return
        half = seed.vector_length // 2
        for part in (SeedGroup(seed.stores[:half]),
                     SeedGroup(seed.stores[half:])):
            if part.alive():
                self._vectorize_seed(part, ctx, aa)

    def _try_store_tree(self, seed, ctx, aa) -> tuple:
        builder = GraphBuilder(self.config.build_policy(), self.target,
                               ctx)
        graph = builder.build(seed.stores)
        self._absorb(builder.stats)
        cost = compute_graph_cost(graph, self.target)
        description = graph.dump()
        vectorized = False
        schedulable = False
        if not (graph.root is None or graph.root.is_gather):
            codegen = VectorCodeGen(graph, aa)
            schedulable = codegen.can_schedule()
            if schedulable and cost.total < self.config.cost_threshold:
                codegen.run()
                vectorized = True
        return ("store", seed.vector_length, cost.total, vectorized,
                schedulable, description)

    def _try_reduction(self, seed, ctx, aa):
        plan = plan_reduction(
            seed, self.config.build_policy(), self.target, ctx
        )
        if plan is None:
            return None
        # (the historical driver did not absorb reduction build stats)
        description = plan.graph.dump()
        vectorized = False
        schedulable = True
        if plan.total_cost < self.config.cost_threshold:
            vectorized = emit_reduction(plan, aa)
            if not vectorized:
                schedulable = False
        return ("reduction", plan.vector_length, plan.total_cost,
                vectorized, schedulable, description)

    def _absorb(self, stats: BuildStats) -> None:
        self.stats.nodes += stats.nodes
        self.stats.multi_nodes += stats.multi_nodes
        self.stats.gathers += stats.gathers
        self.stats.reorders += stats.reorders
        self.stats.lookahead_evals += stats.lookahead_evals


def reference_compile(func, config):
    """The pre-refactor pipeline: scalar passes, greedy SLP, cleanup."""
    scalar_pipeline().run_function(func)
    greedy = ReferenceGreedy(config)
    greedy.run_function(func)
    run_dce(func)
    return greedy


def tree_tuples(report):
    return [
        (t.kind, t.vector_length, t.cost, t.vectorized, t.schedulable,
         t.description)
        for t in report.trees
    ]


def stats_tuple(stats):
    return (stats.nodes, stats.multi_nodes, stats.gathers,
            stats.reorders, stats.lookahead_evals)


def assert_legacy_matches_reference(source, config):
    _, ref_func = build_kernel(source)
    reference = reference_compile(ref_func, config)
    module, func = build_kernel(source)
    result = compile_function(func, config)
    assert print_function(func) == print_function(ref_func), config.name
    assert tree_tuples(result.report) == reference.trees, config.name
    assert stats_tuple(result.report.stats) == stats_tuple(
        reference.stats
    ), config.name


# ---------------------------------------------------------------------------
# Differential: legacy == pre-refactor greedy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kernel", list(ALL_KERNELS.values()) + OVERLAP_KERNELS,
    ids=lambda k: k.name
)
def test_legacy_matches_reference_on_catalog(kernel):
    for config in CONFIGS:
        assert_legacy_matches_reference(kernel.source, config)


@settings(max_examples=40, deadline=None)
@given(source=kernels())
def test_legacy_matches_reference_on_random_kernels(source):
    for config in CONFIGS:
        assert_legacy_matches_reference(source, config)


# ---------------------------------------------------------------------------
# Selection: savings-driven modes never lose to greedy first-fit
# ---------------------------------------------------------------------------


def costs_by_mode(source):
    total = {}
    for mode in ("legacy", "greedy-savings", "exhaustive"):
        config = replace(VectorizerConfig.lslp(), plan_select=mode)
        _, func = build_kernel(source)
        total[mode] = compile_function(func, config).static_cost
    return total


@settings(max_examples=40, deadline=None)
@given(source=kernels())
def test_selection_never_worse_than_legacy(source):
    total = costs_by_mode(source)
    assert total["greedy-savings"] <= total["legacy"], source
    assert total["exhaustive"] <= total["greedy-savings"], source


@pytest.mark.parametrize("kernel", OVERLAP_KERNELS, ids=lambda k: k.name)
def test_selection_wins_on_overlapping_seeds(kernel):
    total = costs_by_mode(kernel.source)
    assert total["greedy-savings"] < total["legacy"]
    assert total["exhaustive"] <= total["greedy-savings"]


def test_selection_preserves_semantics():
    from repro.interp import compare_runs
    from repro.ir import verify_function

    for kernel in OVERLAP_KERNELS:
        reference = build_kernel(kernel.source)
        for mode in ("greedy-savings", "exhaustive"):
            config = replace(VectorizerConfig.lslp(), plan_select=mode)
            module, func = build_kernel(kernel.source)
            compile_function(func, config)
            verify_function(func)
            outcome = compare_runs(
                reference, (module, func), args={"i": 8}, seed=7,
            )
            assert outcome.equivalent, outcome.detail


# ---------------------------------------------------------------------------
# Observability: every plan is visible
# ---------------------------------------------------------------------------


def test_plan_records_and_sink_cover_every_candidate():
    sink = ListSink()
    records.set_sink(sink)
    plans: list[dict] = []
    records.set_plan_sink(plans)
    try:
        config = replace(VectorizerConfig.lslp(),
                         plan_select="greedy-savings")
        _, func = build_kernel(OVERLAP_KERNELS[0].source)
        compile_function(func, config)
    finally:
        records.set_sink(None)
        records.set_plan_sink(None)
    types = {r["type"] for r in sink.records}
    assert {"plan", "select", "reject"} <= types
    plan_ids = [r["plan_id"] for r in sink.records if r["type"] == "plan"]
    decided = [
        r["plan_id"] for r in sink.records
        if r["type"] in ("select", "reject")
    ]
    # every enumerated plan gets exactly one select-or-reject verdict
    assert sorted(decided) == sorted(plan_ids)
    assert plans, "plan sink captured nothing"
    assert {e["plan_id"] for e in plans} == set(plan_ids)
    outcomes = {e["outcome"] for e in plans}
    assert "applied" in outcomes
    for entry in plans:
        assert entry["mode"] == "greedy-savings"
        assert "total_cost" in entry and "description" in entry


def test_policy_variant_plans_are_enumerated_and_rejected():
    sink = ListSink()
    records.set_sink(sink)
    try:
        config = replace(VectorizerConfig.lslp(),
                         plan_policy_variants=("slp",))
        _, func = build_kernel(OVERLAP_KERNELS[0].source)
        compile_function(func, config)
    finally:
        records.set_sink(None)
    variants = [
        r for r in sink.records
        if r["type"] == "plan" and r.get("policy") == "slp"
    ]
    assert variants, "expected plan records for the slp policy variant"
    rejected = {
        r["plan_id"]: r.get("reason")
        for r in sink.records if r["type"] == "reject"
    }
    for record in variants:
        assert rejected.get(record["plan_id"]) == "policy-variant"


# ---------------------------------------------------------------------------
# Budgets: degradation is explicit
# ---------------------------------------------------------------------------


def test_budget_abort_leaves_explicit_remark():
    config = VectorizerConfig.lslp().with_budget(Budget(max_seconds=0.0))
    _, func = build_kernel(OVERLAP_KERNELS[0].source)
    result = compile_function(func, config)
    remarks = [
        r for r in result.report.remarks
        if r.category == "budget" and "left scalar" in r.message
    ]
    assert remarks, "expected a seed-abort degradation remark"
    assert result.report.num_vectorized == 0


def test_select_subset_budget_trips_event():
    config = replace(
        VectorizerConfig.lslp(), plan_select="exhaustive",
        budget=Budget(max_select_subsets=1),
    )
    _, func = build_kernel(OVERLAP_KERNELS[1].source)
    result = compile_function(func, config)
    remarks = [
        r for r in result.report.remarks
        if "plan-selection budget" in r.message
    ]
    assert remarks, "expected the select-subset budget remark"
    # the greedy incumbent still stands: never worse than legacy
    _, legacy_func = build_kernel(OVERLAP_KERNELS[1].source)
    legacy = compile_function(legacy_func, VectorizerConfig.lslp())
    assert result.static_cost <= legacy.static_cost


# ---------------------------------------------------------------------------
# Lazy descriptions: serde drops dumps for scalar-kept trees
# ---------------------------------------------------------------------------


def test_serde_skips_descriptions_of_unvectorized_trees():
    config = replace(VectorizerConfig.lslp(),
                     plan_select="greedy-savings")
    _, func = build_kernel(OVERLAP_KERNELS[0].source)
    result = compile_function(func, config)
    rejected = [t for t in result.report.trees if not t.vectorized]
    accepted = [t for t in result.report.trees if t.vectorized]
    assert rejected and accepted
    for tree in rejected:
        data = tree_to_dict(tree)
        assert data["description"] == ""
        assert tree_from_dict(data).description == ""
    for tree in accepted:
        data = tree_to_dict(tree)
        assert data["description"] == tree.description
        assert data["description"]
        roundtrip = tree_from_dict(data)
        assert roundtrip.description == tree.description
