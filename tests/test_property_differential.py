"""Property-based differential testing of the whole vectorizer.

Hypothesis generates random straight-line kernels shaped like the
paper's workloads: a random expression template instantiated across 2 or
4 lanes, with commutative operand swaps and re-associations injected per
lane (the exact non-isomorphism LSLP targets).  Every generated program,
under every configuration, must verify and compute exactly what the
unoptimized reference computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import compare_runs
from repro.ir import verify_function
from repro.opt import compile_function
from repro.robustness import (
    FAULT_KINDS,
    DifferentialOracle,
    FaultInjector,
    FaultSpec,
    GuardPolicy,
)
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel

ARRAYS = ["B", "C", "D", "E"]
COMMUTATIVE_OPS = ["+", "*", "&", "|", "^"]
NON_COMMUTATIVE_OPS = ["-", "<<", ">>"]


# ---------------------------------------------------------------------------
# Expression templates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Leaf:
    kind: str      #: "load" | "const" | "param"
    array: str = "B"
    offset: int = 0
    value: int = 0


@dataclass(frozen=True)
class Node:
    op: str
    left: Union["Node", Leaf]
    right: Union["Node", Leaf]


def render(expr, lane: int, swaps: list[bool], slot: list[int]) -> str:
    """Render a template for one lane, consuming per-node swap bits."""
    if isinstance(expr, Leaf):
        if expr.kind == "load":
            return f"{expr.array}[i + {expr.offset + lane}]"
        if expr.kind == "param":
            return "k"
        return str(expr.value)
    my_swap = False
    if expr.op in COMMUTATIVE_OPS and slot[0] < len(swaps):
        my_swap = swaps[slot[0]]
        slot[0] += 1
    left = render(expr.left, lane, swaps, slot)
    right = render(expr.right, lane, swaps, slot)
    if my_swap:
        left, right = right, left
    if expr.op == "<<" or expr.op == ">>":
        # keep shift amounts small constants for well-defined shapes
        right = str(abs(hash(right)) % 5 + 1) if not right.isdigit() else right
    return f"({left} {expr.op} {right})"


leaves = st.one_of(
    st.builds(
        Leaf,
        kind=st.just("load"),
        array=st.sampled_from(ARRAYS),
        offset=st.integers(min_value=0, max_value=3),
    ),
    st.builds(
        Leaf,
        kind=st.just("const"),
        value=st.integers(min_value=-7, max_value=7),
    ),
    st.builds(Leaf, kind=st.just("param")),
)


def expressions(max_depth: int = 3):
    return st.recursive(
        leaves,
        lambda children: st.builds(
            Node,
            op=st.sampled_from(COMMUTATIVE_OPS + NON_COMMUTATIVE_OPS),
            left=children,
            right=children,
        ),
        max_leaves=6,
    )


@st.composite
def kernels(draw):
    lanes = draw(st.sampled_from([2, 4]))
    template = draw(expressions())
    rows = []
    for lane in range(lanes):
        swaps = draw(
            st.lists(st.booleans(), min_size=0, max_size=8)
        )
        body = render(template, lane, swaps, [0])
        rows.append(f"    A[i + {lane}] = {body};")
    decls = "unsigned long A[64], " + ", ".join(
        f"{name}[64]" for name in ARRAYS
    ) + ";"
    source = (
        f"{decls}\n"
        "void kernel(long i, long k) {\n"
        + "\n".join(rows)
        + "\n}\n"
    )
    return source


CONFIGS = [
    VectorizerConfig.slp_nr(),
    VectorizerConfig.slp(),
    VectorizerConfig.lslp(),
    VectorizerConfig.lslp(2, 2, name="LSLP-LA2-Multi2"),
]


@settings(max_examples=60, deadline=None)
@given(source=kernels(), seed=st.integers(min_value=0, max_value=10**6))
def test_vectorization_preserves_semantics(source, seed):
    reference = build_kernel(source)
    for config in CONFIGS:
        module, func = build_kernel(source)
        compile_function(func, config)
        verify_function(func)
        outcome = compare_runs(
            reference, (module, func),
            args={"i": 4, "k": seed % 97 - 48}, seed=seed,
        )
        assert outcome.equivalent, (
            f"{config.name} broke semantics: {outcome.detail}\n{source}"
        )


@settings(max_examples=30, deadline=None)
@given(source=kernels())
def test_lslp_cost_never_worse_than_slp(source):
    _, slp_func = build_kernel(source)
    slp = compile_function(slp_func, VectorizerConfig.slp())
    _, lslp_func = build_kernel(source)
    lslp = compile_function(lslp_func, VectorizerConfig.lslp())
    assert lslp.static_cost <= slp.static_cost, source


# ---------------------------------------------------------------------------
# Randomized fault injection: the guarded driver's recovery property
# ---------------------------------------------------------------------------

PASS_NAMES = [
    "inline", "constfold", "instcombine", "cse", "dce", "unroll",
    "simplifycfg", "constfold-post-unroll", "instcombine-post-unroll",
    "cse-post-unroll", "dce-post-unroll", "slp", "dce-post", "*",
]


@pytest.mark.faults
@settings(max_examples=60, deadline=None)
@given(
    source=kernels(),
    pass_name=st.sampled_from(PASS_NAMES),
    kind=st.sampled_from(FAULT_KINDS),
    fault_seed=st.integers(min_value=0, max_value=10**6),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_guarded_compile_survives_random_faults(
    source, pass_name, kind, fault_seed, seed
):
    """Under any fault in any pass, for every configuration: guarded
    compilation never raises, the surviving IR verifies, and its
    interpreted output matches the scalar baseline."""
    run_args = {"i": 4, "k": seed % 97 - 48}
    reference = build_kernel(source)
    for config in CONFIGS:
        module, func = build_kernel(source)
        faults = FaultInjector(FaultSpec(pass_name, kind), seed=fault_seed)
        policy = GuardPolicy(
            oracle=DifferentialOracle(module, args=run_args,
                                      seeds=(seed,)),
            oracle_reference="input",
        )
        result = compile_function(func, config, guard=policy,
                                  faults=faults)
        verify_function(func)
        outcome = compare_runs(
            reference, (module, func), args=run_args, seed=seed,
        )
        assert outcome.equivalent, (
            f"{config.name} with {kind} in {pass_name!r} "
            f"(fault seed {fault_seed}) broke semantics: "
            f"{outcome.detail}\nrolled back: {result.rolled_back}\n"
            f"{source}"
        )


@settings(max_examples=30, deadline=None)
@given(source=kernels())
def test_compilation_is_deterministic(source):
    _, func1 = build_kernel(source)
    result1 = compile_function(func1, VectorizerConfig.lslp())
    _, func2 = build_kernel(source)
    result2 = compile_function(func2, VectorizerConfig.lslp())
    assert result1.static_cost == result2.static_cost
    assert (
        result1.report.num_vectorized == result2.report.num_vectorized
    )
    from repro.ir import print_function

    assert print_function(func1) == print_function(func2)
