"""Property-based invariants of the SLP graph builder.

For random kernels, whatever graph the builder constructs must satisfy
the structural invariants codegen and costing depend on: every node has
exactly VL lanes, no instruction is claimed by two nodes, children line
up with operand counts, and multi-node rows are opcode-uniform.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import ScalarEvolution
from repro.costmodel import skylake_like
from repro.slp import (
    BuildPolicy,
    GatherNode,
    GraphBuilder,
    LookAheadContext,
    MultiNode,
    VectorizableNode,
    collect_store_seeds,
)
from tests.conftest import build_kernel
from tests.test_property_differential import kernels


def build_graphs(source: str):
    module, func = build_kernel(source)
    ctx = LookAheadContext(ScalarEvolution())
    target = skylake_like()
    graphs = []
    for seed in collect_store_seeds(func.entry, ctx.scev, target):
        builder = GraphBuilder(BuildPolicy(), target, ctx)
        graphs.append(builder.build(seed.stores))
    return graphs


@settings(max_examples=50, deadline=None)
@given(source=kernels())
def test_graph_structural_invariants(source):
    for graph in build_graphs(source):
        assert graph.root is not None
        vector_length = graph.root.vector_length
        claimed: set[int] = set()
        seen_nodes: set[int] = set()
        for node in graph.walk():
            if id(node) in seen_nodes:
                continue
            seen_nodes.add(id(node))
            # every node carries one value per lane
            assert node.vector_length == vector_length
            assert len(node.lanes) == vector_length
            if isinstance(node, GatherNode):
                assert not node.children
                continue
            # claimed instructions are unique across the graph
            for inst in node.all_instructions():
                assert id(inst) not in claimed, "double-claimed lane"
                claimed.add(id(inst))
            if isinstance(node, MultiNode):
                assert len(node.children) == node.num_operands
                for row in node.rows:
                    assert len(row) == vector_length
                    assert all(v.opcode == node.opcode for v in row)
                # the frontier has one more group than chain rows
                assert node.num_operands == len(node.rows) + 1
            elif isinstance(node, VectorizableNode):
                if node.opcode == "store":
                    assert len(node.children) == 1
                elif node.opcode == "load":
                    assert node.children == []
                else:
                    first = node.lanes[0]
                    assert len(node.children) == len(first.operands)


@settings(max_examples=50, deadline=None)
@given(source=kernels())
def test_graph_walk_terminates_and_includes_root(source):
    for graph in build_graphs(source):
        nodes = list(graph.walk())
        assert graph.root in nodes
        assert len(nodes) < 10_000
