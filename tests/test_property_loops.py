"""Property-based testing of the loop pipeline.

Hypothesis generates random counted loops (constant or symbolic bounds,
positive steps, straight-line bodies over arrays indexed by affine
expressions of the induction variable), runs them through the full O3 /
SLP / LSLP pipelines, and checks observational equivalence against the
unoptimized reference — exercising lowering, phi handling, unrolling,
CFG simplification, and vectorization together.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.interp import compare_runs
from repro.ir import verify_function
from repro.opt import compile_function
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel

ARRAYS = ["B", "C", "D"]
OPS = ["+", "-", "*", "&", "|", "^"]
#: commutative + associative updates: legal to reassociate into a
#: horizontal reduction (``-`` deliberately excluded)
REDUCTION_OPS = ["+", "*", "&", "|", "^"]


@st.composite
def loop_kernels(draw):
    bound = draw(st.integers(min_value=0, max_value=8))
    step = draw(st.integers(min_value=1, max_value=3))
    predicate = draw(st.sampled_from(["<", "<="]))
    use_symbolic_bound = draw(st.booleans())
    bound_text = "n" if use_symbolic_bound else str(bound)

    statements = []
    n_stmts = draw(st.integers(min_value=1, max_value=3))
    for index in range(n_stmts):
        array = draw(st.sampled_from(ARRAYS))
        scale = draw(st.integers(min_value=1, max_value=4))
        offset = draw(st.integers(min_value=0, max_value=3))
        op1 = draw(st.sampled_from(OPS))
        op2 = draw(st.sampled_from(OPS))
        const = draw(st.integers(min_value=-5, max_value=5))
        lhs_index = f"{scale}*j + {offset}"
        statements.append(
            f"        A[{scale}*j + {offset + index}] = "
            f"({array}[{lhs_index}] {op1} B[j]) {op2} {const};"
        )
    body = "\n".join(statements)
    source = (
        "unsigned long A[2048], B[2048], C[2048], D[2048];\n"
        "void kernel(long n) {\n"
        f"    for (long j = 0; j {predicate} {bound_text}; j = j + {step})"
        " {\n"
        f"{body}\n"
        "    }\n"
        "}\n"
    )
    return source, bound


@st.composite
def reduction_loop_kernels(draw):
    """Counted loops carrying scalar accumulators: random trip counts
    (constant or symbolic), steps, and commutative reduction ops —
    the unroll-and-SLP surface (partial unroll, accumulator phis,
    horizontal reductions, scalar epilogues)."""
    bound = draw(st.integers(min_value=0, max_value=40))
    step = draw(st.integers(min_value=1, max_value=3))
    predicate = draw(st.sampled_from(["<", "<="]))
    use_symbolic_bound = draw(st.booleans())
    bound_text = "n" if use_symbolic_bound else str(bound)

    op = draw(st.sampled_from(REDUCTION_OPS))
    init = draw(st.integers(min_value=-3, max_value=3))
    array = draw(st.sampled_from(ARRAYS))
    other = draw(st.sampled_from(ARRAYS))
    shape = draw(st.sampled_from(["plain", "product", "offset"]))
    if shape == "plain":
        update = f"s {op} {array}[j]"
    elif shape == "product":
        update = f"s {op} {array}[j] * {other}[j]"
    else:
        offset = draw(st.integers(min_value=1, max_value=3))
        update = f"s {op} ({array}[j] + {other}[j + {offset}])"
    with_store = draw(st.booleans())
    store = f"        A[j] = {array}[j] {op} 1;\n" if with_store else ""
    source = (
        "unsigned long A[2048], B[2048], C[2048], D[2048];\n"
        "unsigned long kernel(long n) {\n"
        f"    unsigned long s = {init};\n"
        f"    for (long j = 0; j {predicate} {bound_text}; j = j + {step})"
        " {\n"
        f"{store}"
        f"        s = {update};\n"
        "    }\n"
        "    return s;\n"
        "}\n"
    )
    return source, bound


CONFIGS = [
    VectorizerConfig.o3(),
    VectorizerConfig.slp(),
    VectorizerConfig.lslp(),
    replace(VectorizerConfig.lslp(name="LSLP-loopvec"),
            loop_vectorize=True),
]


@settings(max_examples=40, deadline=None)
@given(data=loop_kernels(), seed=st.integers(min_value=0, max_value=10**6))
def test_loop_pipeline_preserves_semantics(data, seed):
    source, bound = data
    reference = build_kernel(source)
    for config in CONFIGS:
        module, func = build_kernel(source)
        compile_function(func, config)
        verify_function(func)
        outcome = compare_runs(
            reference, (module, func), args={"n": bound}, seed=seed
        )
        assert outcome.equivalent, (
            f"{config.name} broke a loop kernel: {outcome.detail}\n{source}"
        )


@settings(max_examples=40, deadline=None)
@given(data=reduction_loop_kernels(),
       seed=st.integers(min_value=0, max_value=10**6))
def test_reduction_loops_preserve_semantics(data, seed):
    """Random accumulator loops survive every configuration — including
    unroll-and-SLP, whose horizontal reduction reassociates the chain
    (sound for these modular commutative ops)."""
    source, bound = data
    reference = build_kernel(source)
    for config in CONFIGS:
        module, func = build_kernel(source)
        compile_function(func, config)
        verify_function(func)
        outcome = compare_runs(
            reference, (module, func), args={"n": bound}, seed=seed
        )
        assert outcome.equivalent, (
            f"{config.name} broke a reduction loop: "
            f"{outcome.detail}\n{source}"
        )


@settings(max_examples=25, deadline=None)
@given(data=loop_kernels())
def test_unrolling_eliminates_constant_loops(data):
    source, bound = data
    if "n;" in source or "< n" in source or "<= n" in source:
        return  # symbolic bound: loop must stay
    module, func = build_kernel(source)
    compile_function(func, VectorizerConfig.o3())
    assert len(func.blocks) == 1, source
