"""Property: the textual IR round-trips for arbitrary generated
programs — scalar, vectorized, loops, and calls."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ir import parse_module, print_module, verify_module
from repro.opt import compile_function
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel
from tests.test_property_differential import kernels
from tests.test_property_loops import loop_kernels


def round_trips(module) -> None:
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert print_module(reparsed) == text, text


@settings(max_examples=40, deadline=None)
@given(source=kernels())
def test_scalar_programs_round_trip(source):
    module, _ = build_kernel(source)
    verify_module(module)
    round_trips(module)


@settings(max_examples=40, deadline=None)
@given(source=kernels())
def test_vectorized_programs_round_trip(source):
    module, func = build_kernel(source)
    compile_function(func, VectorizerConfig.lslp())
    round_trips(module)


@settings(max_examples=30, deadline=None)
@given(data=loop_kernels())
def test_loop_programs_round_trip(data):
    source, _ = data
    module, func = build_kernel(source)
    verify_module(module)
    round_trips(module)
    # and after the full pipeline (unrolled or still a loop)
    compile_function(func, VectorizerConfig.lslp())
    round_trips(module)


def test_call_programs_round_trip():
    module, _ = build_kernel("""
long A[64], B[64];
long helper(long x) { return x * 3 + 1; }
void kernel(long i) {
    A[i] = helper(B[i]);
}
""")
    round_trips(module)
