"""Property-based tests of the operand reordering engine's invariants.

Whatever the reorderer decides, it must only *permute* each lane's
operands: lane 0 stays fixed, every later lane's slot assignment is a
permutation of that lane's original operands, and the result is
deterministic.  Hypothesis builds random operand matrices out of loads,
constants, arithmetic and shared (splat-able) values.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (
    Constant,
    Function,
    GlobalArray,
    I64,
    IRBuilder,
    Module,
)
from repro.slp import (
    ExhaustiveReorderer,
    LookAheadContext,
    OperandMode,
    OperandReorderer,
)


class _Env:
    """A scratch function providing a pool of values to draw from."""

    def __init__(self):
        self.module = Module("prop")
        self.arrays = [
            self.module.add_global(GlobalArray(name, I64, 256))
            for name in ("P", "Q", "R")
        ]
        self.func = Function("f", [("i", I64)])
        self.builder = IRBuilder(self.func.add_block("entry"))
        self.i = self.func.argument("i")
        self.shared = self.builder.mul(self.i, self.builder.i64(3))

    def make_value(self, kind: int, array: int, offset: int, const: int):
        builder = self.builder
        if kind == 0:
            return Constant(I64, const)
        if kind == 1:
            idx = builder.add(self.i, builder.i64(offset))
            return builder.load(builder.gep(self.arrays[array], idx))
        if kind == 2:
            return builder.binop(
                ["add", "mul", "xor", "shl"][offset % 4],
                self.i, builder.i64(const),
            )
        return self.shared  # kind 3: a repeated (splat-able) value


value_specs = st.tuples(
    st.integers(min_value=0, max_value=3),   # kind
    st.integers(min_value=0, max_value=2),   # array
    st.integers(min_value=0, max_value=5),   # offset
    st.integers(min_value=-9, max_value=9),  # constant
)


@st.composite
def operand_matrices(draw):
    slots = draw(st.integers(min_value=1, max_value=4))
    lanes = draw(st.integers(min_value=2, max_value=4))
    env = _Env()
    groups = [
        [env.make_value(*draw(value_specs)) for _ in range(lanes)]
        for _ in range(slots)
    ]
    return env, groups


def lane_multiset(groups, lane):
    return sorted(id(group[lane]) for group in groups)


@settings(max_examples=80, deadline=None)
@given(data=operand_matrices(), depth=st.integers(min_value=0, max_value=4))
def test_reorder_is_a_per_lane_permutation(data, depth):
    env, groups = data
    ctx = LookAheadContext()
    result = OperandReorderer(ctx, look_ahead_depth=depth).reorder(groups)
    lanes = len(groups[0])
    for lane in range(lanes):
        assert (
            lane_multiset(result.final_order, lane)
            == lane_multiset(groups, lane)
        ), f"lane {lane} lost or duplicated operands"
    # lane 0 is stripped as-is
    for slot, group in enumerate(groups):
        assert result.final_order[slot][0] is group[0]
    # one mode per slot, all valid
    assert len(result.modes) == len(groups)
    assert all(isinstance(mode, OperandMode) for mode in result.modes)


@settings(max_examples=40, deadline=None)
@given(data=operand_matrices())
def test_reorder_is_deterministic(data):
    env, groups = data
    ctx = LookAheadContext()
    first = OperandReorderer(ctx, look_ahead_depth=3).reorder(groups)
    second = OperandReorderer(ctx, look_ahead_depth=3).reorder(groups)
    assert [
        [id(v) for v in row] for row in first.final_order
    ] == [
        [id(v) for v in row] for row in second.final_order
    ]
    assert first.modes == second.modes


@settings(max_examples=40, deadline=None)
@given(data=operand_matrices())
def test_exhaustive_reorder_is_also_a_permutation(data):
    env, groups = data
    ctx = LookAheadContext()
    result = ExhaustiveReorderer(
        ctx, look_ahead_depth=2, max_assignments=2000
    ).reorder(groups)
    lanes = len(groups[0])
    for lane in range(lanes):
        assert (
            lane_multiset(result.final_order, lane)
            == lane_multiset(groups, lane)
        )
