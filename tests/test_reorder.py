"""Tests for the top-level operand reordering (Listing 5/6, Table 1),
including a Figure 8 style multi-lane walkthrough."""

import pytest

from repro.ir import (
    Constant,
    Function,
    GlobalArray,
    I64,
    IRBuilder,
    Module,
)
from repro.slp import (
    LookAheadContext,
    OperandMode,
    OperandReorderer,
    initial_mode,
)


@pytest.fixture
def env():
    module = Module("m")
    arrays = {
        name: module.add_global(GlobalArray(name, I64, 64))
        for name in "ABCDE"
    }
    func = Function("f", [("i", I64)])
    builder = IRBuilder(func.add_block("entry"))
    ctx = LookAheadContext()
    return module, func, builder, arrays, ctx


def load_at(builder, array, index_value, offset):
    idx = builder.add(index_value, builder.i64(offset))
    return builder.load(builder.gep(array, idx))


class TestInitialMode:
    def test_modes(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        assert initial_mode(Constant(I64, 1)) is OperandMode.CONST
        load = load_at(builder, arrays["A"], i, 0)
        assert initial_mode(load) is OperandMode.LOAD
        add = builder.add(i, builder.i64(1))
        assert initial_mode(add) is OperandMode.OPCODE
        assert initial_mode(i) is OperandMode.SPLAT


class TestTwoOperandReordering:
    def test_swapped_loads_realigned(self, env):
        """Figure 2's core: shifts swapped across lanes get realigned by
        look-ahead on their loads."""
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        b, c = arrays["B"], arrays["C"]
        shl_b0 = builder.shl(load_at(builder, b, i, 0), builder.i64(1))
        shl_c0 = builder.shl(load_at(builder, c, i, 0), builder.i64(2))
        shl_c1 = builder.shl(load_at(builder, c, i, 1), builder.i64(3))
        shl_b1 = builder.shl(load_at(builder, b, i, 1), builder.i64(4))

        groups = [[shl_b0, shl_c1], [shl_c0, shl_b1]]
        result = OperandReorderer(ctx, look_ahead_depth=2).reorder(groups)
        assert result.final_order[0] == [shl_b0, shl_b1]
        assert result.final_order[1] == [shl_c0, shl_c1]
        assert result.modes == [OperandMode.OPCODE, OperandMode.OPCODE]

    def test_look_ahead_zero_keeps_original_on_tie(self, env):
        """Vanilla SLP (depth 0) cannot break the shl/shl tie (§3.1)."""
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        b, c = arrays["B"], arrays["C"]
        shl_b0 = builder.shl(load_at(builder, b, i, 0), builder.i64(1))
        shl_c0 = builder.shl(load_at(builder, c, i, 0), builder.i64(2))
        shl_c1 = builder.shl(load_at(builder, c, i, 1), builder.i64(3))
        shl_b1 = builder.shl(load_at(builder, b, i, 1), builder.i64(4))

        groups = [[shl_b0, shl_c1], [shl_c0, shl_b1]]
        result = OperandReorderer(ctx, look_ahead_depth=0).reorder(groups)
        assert result.final_order[0] == [shl_b0, shl_c1]  # unchanged
        assert result.final_order[1] == [shl_c0, shl_b1]

    def test_opcode_mismatch_fixed_without_lookahead(self, env):
        """Listing 1: sub+load vs load+sub — the mode machinery alone
        fixes it (this is what vanilla SLP *can* do)."""
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        a, b = arrays["A"], arrays["B"]
        sub0 = builder.sub(i, builder.i64(1))
        load0 = load_at(builder, a, i, 0)
        load1 = load_at(builder, a, i, 1)
        sub1 = builder.sub(i, builder.i64(2))
        groups = [[sub0, load1], [load0, sub1]]
        result = OperandReorderer(ctx, look_ahead_depth=0).reorder(groups)
        assert result.final_order[0] == [sub0, sub1]
        assert result.final_order[1] == [load0, load1]

    def test_constant_slot(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        add0 = builder.add(i, builder.i64(5))
        add1 = builder.add(i, builder.i64(6))
        c0 = Constant(I64, 1)
        c1 = Constant(I64, 2)
        groups = [[add0, c1], [c0, add1]]
        result = OperandReorderer(ctx).reorder(groups)
        assert result.final_order[0] == [add0, add1]
        assert result.final_order[1] == [c0, c1]
        assert result.modes[1] is OperandMode.CONST


class TestFailedMode:
    def test_failed_slot_takes_leftovers(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        a = arrays["A"]
        load0 = load_at(builder, a, i, 0)
        c0 = Constant(I64, 1)
        # lane 1 has no constant: slot 1 must fail and take the leftover
        load1 = load_at(builder, a, i, 1)
        extra = load_at(builder, arrays["E"], i, 0)
        groups = [[load0, extra], [c0, load1]]
        result = OperandReorderer(ctx).reorder(groups)
        # slot0 (LOAD) picks the consecutive load; slot1 fails -> leftover
        assert result.final_order[0] == [load0, load1]
        assert result.final_order[1] == [c0, extra]
        assert result.modes[1] is OperandMode.FAILED

    def test_failed_slot_does_not_steal_matches(self, env):
        """On the lane where a slot fails it must not consume a candidate
        another slot needs."""
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        a = arrays["A"]
        c0 = Constant(I64, 1)
        load0 = load_at(builder, a, i, 0)
        load1 = load_at(builder, a, i, 1)
        opaque = builder.xor(i, builder.i64(3))
        # slot0 starts CONST; lane1 candidates are [load1, opaque]:
        # slot0 fails; slot1 (LOAD) must still get load1.
        groups = [[c0, opaque], [load0, load1]]
        result = OperandReorderer(ctx).reorder(groups)
        assert result.modes[0] is OperandMode.FAILED
        assert result.final_order[1] == [load0, load1]
        assert result.final_order[0] == [c0, opaque]

    def test_failed_slot_stays_failed(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        a = arrays["A"]
        c0 = Constant(I64, 5)
        loads = [load_at(builder, a, i, k) for k in range(3)]
        others = [load_at(builder, arrays["B"], i, k) for k in range(3)]
        groups = [
            [c0, others[1], Constant(I64, 7)],   # fails at lane 1
            [loads[0], loads[1], loads[2]],
        ]
        result = OperandReorderer(ctx).reorder(groups)
        assert result.modes[0] is OperandMode.FAILED
        assert result.final_order[1] == loads


class TestSplatMode:
    def test_repeat_switches_to_splat(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        r = builder.mul(i, builder.i64(3))
        adds = [builder.add(i, builder.i64(k)) for k in range(3)]
        groups = [[r, r, r], [adds[0], adds[1], adds[2]]]
        result = OperandReorderer(ctx).reorder(groups)
        assert result.final_order[0] == [r, r, r]
        assert result.modes[0] is OperandMode.SPLAT

    def test_splat_slot_prefers_exact_value(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        r = builder.mul(i, builder.i64(3))
        other = builder.mul(i, builder.i64(4))
        adds = [builder.add(i, builder.i64(k)) for k in range(3)]
        # lane2 offers both another mul and r itself; splat wants r
        groups = [[r, r, r], [adds[0], adds[1], other]]
        result = OperandReorderer(ctx).reorder(groups)
        assert result.final_order[0] == [r, r, r]
        assert result.final_order[1] == [adds[0], adds[1], other]

    def test_argument_lane_starts_in_splat_mode(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        adds = [builder.add(i, builder.i64(k)) for k in range(2)]
        groups = [[i, i], [adds[0], adds[1]]]
        result = OperandReorderer(ctx).reorder(groups)
        assert result.modes[0] is OperandMode.SPLAT
        assert result.final_order[0] == [i, i]


class TestMultiNodeReordering:
    def test_three_slot_frontier(self, env):
        """Figure 4's multi-node frontier: [load, add, add] per lane with
        scrambled order gets aligned across lanes."""
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        a, b, c, d, e = (arrays[k] for k in "ABCDE")
        la0 = load_at(builder, a, i, 0)
        bc0 = builder.add(load_at(builder, b, i, 0),
                          load_at(builder, c, i, 0))
        de0 = builder.add(load_at(builder, d, i, 0),
                          load_at(builder, e, i, 0))
        de1 = builder.add(load_at(builder, d, i, 1),
                          load_at(builder, e, i, 1))
        bc1 = builder.add(load_at(builder, b, i, 1),
                          load_at(builder, c, i, 1))
        la1 = load_at(builder, a, i, 1)
        # lane0 order: [A, B+C, D+E]; lane1 order: [D+E, B+C, A]
        groups = [[la0, de1], [bc0, bc1], [de0, la1]]
        result = OperandReorderer(ctx, look_ahead_depth=2).reorder(groups)
        assert result.final_order[0] == [la0, la1]
        assert result.final_order[1] == [bc0, bc1]
        assert result.final_order[2] == [de0, de1]

    def test_ragged_groups_rejected(self, env):
        *_, ctx = env
        with pytest.raises(ValueError):
            OperandReorderer(ctx).reorder([[Constant(I64, 1)],
                                           [Constant(I64, 2),
                                            Constant(I64, 3)]])

    def test_empty_input(self, env):
        *_, ctx = env
        result = OperandReorderer(ctx).reorder([])
        assert result.final_order == []

    def test_lookahead_eval_counter(self, env):
        module, func, builder, arrays, ctx = env
        i = func.argument("i")
        b, c = arrays["B"], arrays["C"]
        shl_b0 = builder.shl(load_at(builder, b, i, 0), builder.i64(1))
        shl_c0 = builder.shl(load_at(builder, c, i, 0), builder.i64(2))
        shl_c1 = builder.shl(load_at(builder, c, i, 1), builder.i64(3))
        shl_b1 = builder.shl(load_at(builder, b, i, 1), builder.i64(4))
        groups = [[shl_b0, shl_c1], [shl_c0, shl_b1]]
        result = OperandReorderer(ctx, look_ahead_depth=2).reorder(groups)
        assert result.lookahead_evals > 0
