"""The ``lslp batch --telemetry-out`` / ``lslp report`` CLI surface:
artifact layout, digest rendering and determinism, and the regression
diff's exit-code contract."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.service.report import (
    REPORT_SCHEMA,
    diff_reports,
    percentile,
)
from repro.service.telemetry import TELEMETRY_ARTIFACTS


def _run_batch(base, tag):
    report = str(base / f"report-{tag}.json")
    tele = str(base / f"tele-{tag}")
    rc = main([
        "batch", "catalog", "--configs", "lslp", "--cache", "off",
        "--report-out", report, "--telemetry-out", tele,
    ])
    assert rc == 0
    return report, tele


@pytest.fixture(scope="module")
def batch_outputs(tmp_path_factory):
    return _run_batch(tmp_path_factory.mktemp("report-cli"), "a")


def _digest(capsys, *argv):
    rc = main(["report", *argv])
    out = capsys.readouterr().out
    return rc, out


# ---------------------------------------------------------------------------
# Batch artifacts
# ---------------------------------------------------------------------------


def test_batch_writes_report_and_telemetry_dir(batch_outputs):
    report, tele = batch_outputs
    with open(report) as handle:
        document = json.load(handle)
    assert document["schema"] == REPORT_SCHEMA
    assert document["ok"]
    assert document["jobs"]
    assert all("seconds" in job for job in document["jobs"])
    for name in TELEMETRY_ARTIFACTS:
        path = os.path.join(tele, name)
        assert os.path.exists(path)
        assert os.path.getsize(path) > 0


def test_telemetry_validates_via_module_cli(batch_outputs, capsys):
    from repro.obs.validate import main as validate_main

    _, tele = batch_outputs
    rc = validate_main([
        "--trace", os.path.join(tele, "trace.json"),
        "--prom", os.path.join(tele, "metrics.prom"),
        "--stats", os.path.join(tele, "metrics.json"),
        "--remarks", os.path.join(tele, "events.jsonl"),
        "--require-span", "job.attempt",
        "--require-record", "job",
        "--require-metric", "service.job_latency_seconds",
    ])
    captured = capsys.readouterr()
    assert rc == 0, captured.err
    assert captured.out.count("ok") == 4


# ---------------------------------------------------------------------------
# Digest rendering
# ---------------------------------------------------------------------------


def test_digest_text_has_the_health_sections(batch_outputs, capsys):
    report, tele = batch_outputs
    rc, out = _digest(capsys, report, "--telemetry", tele)
    assert rc == 0
    for section in ("batch health report", "cache hit funnel",
                    "status breakdown", "backend tier mix",
                    "retry / shed / degrade", "latency",
                    "slowest jobs (top 5)",
                    "merged metrics (telemetry)"):
        assert section in out
    assert "status compiled:" in out


def test_digest_markdown_format(batch_outputs, capsys):
    report, _ = batch_outputs
    rc, out = _digest(capsys, report, "--format", "markdown",
                      "--top", "3")
    assert rc == 0
    assert out.startswith("# batch health report")
    assert "## cache hit funnel" in out
    assert "slowest jobs (top 3)" in out
    assert "\n- " in out


def test_digest_no_timings_is_byte_deterministic(tmp_path, capsys):
    report_a, _ = _run_batch(tmp_path, "b")
    report_b, _ = _run_batch(tmp_path, "c")
    capsys.readouterr()  # drop the batch commands' own summaries
    rc_a, out_a = _digest(capsys, report_a, "--no-timings")
    rc_b, out_b = _digest(capsys, report_b, "--no-timings")
    assert rc_a == rc_b == 0
    assert out_a == out_b
    assert "latency" not in out_a
    assert "slowest" not in out_a


def test_digest_out_file_and_missing_report(batch_outputs, tmp_path,
                                            capsys):
    report, _ = batch_outputs
    out_file = tmp_path / "digest.txt"
    rc = main(["report", report, "--out", str(out_file)])
    assert rc == 0
    assert "batch health report" in out_file.read_text()
    with pytest.raises(SystemExit):
        main(["report"])
    with pytest.raises(SystemExit):
        main(["report", str(tmp_path / "missing.json")])


# ---------------------------------------------------------------------------
# Regression diff
# ---------------------------------------------------------------------------


def test_self_diff_is_always_clean(batch_outputs, capsys):
    report, _ = batch_outputs
    rc, out = _digest(capsys, "--diff", report, report)
    assert rc == 0
    assert out.startswith("0 regressions")
    assert "REGRESSION" not in out


def test_injected_regression_flips_the_exit_code(batch_outputs,
                                                 tmp_path, capsys):
    report, _ = batch_outputs
    with open(report) as handle:
        document = json.load(handle)
    document["jobs"][0]["status"] = "error"
    document["stats"]["errors"] = \
        document["stats"].get("errors", 0) + 1
    bad = tmp_path / "regressed.json"
    bad.write_text(json.dumps(document))

    rc, out = _digest(capsys, "--diff", report, str(bad))
    assert rc == 1
    assert "REGRESSION: errored jobs rose 0 -> 1" in out
    assert "status worsened compiled -> error" in out

    # the reverse direction is a recovery: informational, exit 0
    rc, out = _digest(capsys, "--diff", str(bad), report)
    assert rc == 0
    assert "note:" in out


def test_diff_flags_newly_open_breaker_and_lost_jobs():
    old = {"jobs": [], "stats": {},
           "breaker": {"lslp": {"state": "closed"}}, "lost_jobs": 0}
    new = {"jobs": [], "stats": {},
           "breaker": {"lslp": {"state": "open"}}, "lost_jobs": 1}
    regressions, _ = diff_reports(old, new)
    assert any("breaker" in line and "open" in line
               for line in regressions)
    assert any("lost jobs rose" in line for line in regressions)


def test_percentile_is_nearest_rank():
    samples = [0.1, 0.2, 0.3, 0.4]
    assert percentile(samples, 0.50) == 0.2
    assert percentile(samples, 0.95) == 0.4
    assert percentile([], 0.95) == 0.0
    assert percentile([7.0], 0.01) == 7.0
