"""Fault-injection acceptance sweep for the guarded driver.

The ISSUE's acceptance scenario: with fault injection configured to make
*every* pass fail (including slp) across the Table 2 kernel catalog,
guarded compilation must never raise, every surviving function must pass
the IR verifier, and differential execution against the scalar baseline
must report zero mismatches.

Marked ``faults`` so CI can run it as a separate smoke stage::

    PYTHONPATH=src python -m pytest -m faults -q
"""

from __future__ import annotations

import pytest

from repro.interp import compare_runs
from repro.ir import verify_function
from repro.kernels.catalog import ALL_KERNELS
from repro.opt import compile_function
from repro.robustness import (
    FAULT_KINDS,
    DifferentialOracle,
    FaultInjector,
    FaultSpec,
    GuardPolicy,
)
from repro.slp import VectorizerConfig

pytestmark = pytest.mark.faults

PASS_NAMES = [
    "inline", "constfold", "instcombine", "cse", "dce", "unroll",
    "simplifycfg", "constfold-post-unroll", "instcombine-post-unroll",
    "cse-post-unroll", "dce-post-unroll", "slp", "dce-post",
]

CONFIGS = [
    VectorizerConfig.o3,
    VectorizerConfig.slp_nr,
    VectorizerConfig.slp,
    VectorizerConfig.lslp,
]


def guarded_policy(module, kernel, oracle_reference="input"):
    """A guard whose oracle replays the kernel's own default arguments,
    referenced against the pristine input so corruption in *any* pass is
    observable."""
    args = dict(kernel.default_args) if kernel.default_args else None
    return GuardPolicy(
        oracle=DifferentialOracle(module, args=args),
        oracle_reference=oracle_reference,
    )


def scalar_baseline(kernel):
    module, func = kernel.build()
    compile_function(func, VectorizerConfig.o3())
    return module, func


def assert_equivalent_to_scalar(kernel, module, func):
    reference = scalar_baseline(kernel)
    args = dict(kernel.default_args) if kernel.default_args else None
    outcome = compare_runs(reference, (module, func), args=args)
    assert outcome.equivalent, (
        f"{kernel.name}: surviving IR diverges from the scalar "
        f"baseline: {outcome.detail}"
    )


@pytest.mark.parametrize("kernel", ALL_KERNELS.values(),
                         ids=list(ALL_KERNELS))
@pytest.mark.parametrize("make_config", CONFIGS,
                         ids=[c().name for c in CONFIGS])
def test_every_pass_raising_never_breaks_compilation(kernel, make_config):
    """FaultSpec("*", "raise") fails every pass in the pipeline; the
    guard must absorb all of them and leave a correct scalar function."""
    module, func = kernel.build()
    faults = FaultInjector(FaultSpec("*", "raise"))
    result = compile_function(
        func, make_config(), guard="guarded", faults=faults
    )
    verify_function(func)
    assert faults.fired, "the sweep must actually inject"
    # Every pass that ran was rolled back...
    assert set(result.rolled_back) == {name for name, _ in faults.fired}
    # ...so the function is untransformed and trivially correct.
    assert_equivalent_to_scalar(kernel, module, func)


@pytest.mark.parametrize("kernel", ALL_KERNELS.values(),
                         ids=list(ALL_KERNELS))
def test_slp_raise_sweep_across_catalog(kernel):
    """Failing just the vectorizer must degrade every kernel to the
    scalar baseline, never crash."""
    module, func = kernel.build()
    faults = FaultInjector(FaultSpec("slp", "raise"))
    result = compile_function(
        func, VectorizerConfig.lslp(), guard="guarded", faults=faults
    )
    verify_function(func)
    assert result.fell_back_to_scalar
    assert_equivalent_to_scalar(kernel, module, func)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("kind", [
    k for k in FAULT_KINDS if k not in ("raise",)
])
def test_corruption_kinds_recovered_on_catalog_sample(kind, seed):
    """Each corruption kind, injected after the slp pass, is caught by
    its designated detector (verifier or oracle) or is harmless; the
    surviving function always verifies and matches scalar semantics."""
    for kernel in list(ALL_KERNELS.values())[:8]:
        module, func = kernel.build()
        faults = FaultInjector(FaultSpec("slp", kind), seed=seed)
        result = compile_function(
            func, VectorizerConfig.lslp(),
            guard=guarded_policy(module, kernel), faults=faults,
        )
        verify_function(func)
        assert_equivalent_to_scalar(kernel, module, func)


@pytest.mark.parametrize("pass_name", PASS_NAMES)
def test_per_pass_corruption_is_contained(pass_name):
    """Corrupting the output of any single pass never escapes the
    guard: the final function verifies and computes scalar semantics."""
    kernel = ALL_KERNELS["453.boy-surface"]
    for kind in ("corrupt-dangling-operand", "corrupt-detach",
                 "corrupt-swap-operands"):
        module, func = kernel.build()
        faults = FaultInjector(FaultSpec(pass_name, kind), seed=1)
        compile_function(
            func, VectorizerConfig.lslp(),
            guard=guarded_policy(module, kernel), faults=faults,
        )
        verify_function(func)
        assert_equivalent_to_scalar(kernel, module, func)


@pytest.mark.parametrize("kernel", list(ALL_KERNELS.values())[:10],
                         ids=list(ALL_KERNELS)[:10])
def test_perturbed_cost_model_is_harmless(kernel):
    """Arbitrary (but legal) vectorization decisions under a jittered
    cost model must still preserve semantics — no guard needed."""
    module, func = kernel.build()
    faults = FaultInjector(FaultSpec("*", "perturb-cost"), seed=7)
    compile_function(func, VectorizerConfig.lslp(), faults=faults)
    verify_function(func)
    assert_equivalent_to_scalar(kernel, module, func)


def test_fault_specs_validate():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("slp", "segfault")
    assert FaultSpec("*", "raise").matches("anything")
    assert not FaultSpec("slp", "raise").matches("dce")


def test_injection_is_deterministic():
    kernel = ALL_KERNELS["453.boy-surface"]
    outputs = []
    for _ in range(2):
        module, func = kernel.build()
        faults = FaultInjector(
            FaultSpec("slp", "corrupt-swap-operands"), seed=42
        )
        compile_function(
            func, VectorizerConfig.lslp(),
            guard=guarded_policy(module, kernel), faults=faults,
        )
        from repro.ir import print_function

        outputs.append((print_function(func), tuple(faults.fired)))
    assert outputs[0] == outputs[1]
