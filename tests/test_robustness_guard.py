"""Tests for the guarded compilation driver (repro.robustness).

Covers function cloning, snapshot/rollback, the strict-mode error
taxonomy, resource budgets, the differential-execution oracle, and the
CLI surface (``--strict`` / ``--remarks`` / ``run --verify`` plus the
``--arg`` and configuration-warning satellites).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.interp import compare_runs
from repro.ir import clone_function, print_function, verify_function
from repro.opt import compile_function
from repro.opt.pipelines import build_pipeline
from repro.robustness import (
    Budget,
    BudgetMeter,
    DiagnosticEngine,
    DifferentialOracle,
    FaultInjector,
    FaultSpec,
    FunctionSnapshot,
    GuardPolicy,
    InvalidIRError,
    MiscompileError,
    PassCrashError,
    PassGuard,
    Remark,
    Severity,
)
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel

KERNEL = """
double A[1024], B[1024], C[1024], D[1024];
void kernel(long i) {
    A[i + 0] = B[i + 0]*C[i + 0] + C[i + 0]*D[i + 0] + B[i + 0]*D[i + 0];
    A[i + 1] = D[i + 1]*B[i + 1] + B[i + 1]*C[i + 1] + D[i + 1]*C[i + 1];
    A[i + 2] = B[i + 2]*C[i + 2] + C[i + 2]*D[i + 2] + B[i + 2]*D[i + 2];
    A[i + 3] = D[i + 3]*B[i + 3] + B[i + 3]*C[i + 3] + D[i + 3]*C[i + 3];
}
"""

ARGS = {"i": 8}


def build():
    return build_kernel(KERNEL)


# ---------------------------------------------------------------------------
# clone_function
# ---------------------------------------------------------------------------


class TestCloneFunction:
    def test_clone_prints_identically(self):
        _, func = build()
        clone = clone_function(func)
        assert print_function(clone) == print_function(func).replace(
            f"@{func.name}", f"@{clone.name}", 1
        )

    def test_clone_verifies(self):
        _, func = build()
        verify_function(clone_function(func))

    def test_clone_is_independent(self):
        _, func = build()
        before = print_function(func)
        clone = clone_function(func)
        # Mutating the clone must not disturb the original.
        clone.blocks[0].instructions[0].name = "tampered"
        assert print_function(func) == before
        verify_function(func)

    def test_clone_survives_optimization_of_original(self):
        _, func = build()
        clone = clone_function(func)
        compile_function(func, VectorizerConfig.lslp())
        verify_function(clone)

    def test_clone_with_control_flow(self):
        """Loops exercise phi back-edges in the two-pass operand fixup."""
        module, func = build_kernel(
            """
            long A[64], B[64];
            void kernel(long n) {
                for (long j = 0; j < n; j = j + 1) {
                    A[j] = B[j] + 1;
                }
            }
            """
        )
        clone = clone_function(func)
        verify_function(clone)
        outcome = compare_runs(
            (module, func), (module, clone), args={"n": 8}
        )
        assert outcome.equivalent, outcome.detail


# ---------------------------------------------------------------------------
# FunctionSnapshot
# ---------------------------------------------------------------------------


class TestFunctionSnapshot:
    def test_restore_undoes_mutation(self):
        _, func = build()
        before = print_function(func)
        snapshot = FunctionSnapshot(func)
        compile_function(func, VectorizerConfig.lslp())
        assert print_function(func) != before
        snapshot.restore()
        assert print_function(func) == before
        verify_function(func)

    def test_restore_is_single_use(self):
        _, func = build()
        snapshot = FunctionSnapshot(func)
        snapshot.restore()
        assert not snapshot.live
        with pytest.raises(RuntimeError):
            snapshot.restore()

    def test_restored_function_recompiles(self):
        """After a rollback the same Function object must still be a
        valid pipeline input (the guard keeps compiling with it)."""
        _, func = build()
        snapshot = FunctionSnapshot(func)
        compile_function(func, VectorizerConfig.lslp())
        snapshot.restore()
        result = compile_function(func, VectorizerConfig.lslp())
        verify_function(func)
        assert result.report.num_vectorized > 0


# ---------------------------------------------------------------------------
# Guarded pass execution
# ---------------------------------------------------------------------------


class TestPassGuard:
    def test_raising_pass_rolls_back_and_continues(self):
        _, func = build()
        faults = FaultInjector(FaultSpec("instcombine", "raise"))
        result = compile_function(
            func, VectorizerConfig.lslp(), guard="guarded", faults=faults
        )
        verify_function(func)
        assert result.rolled_back == ["instcombine"]
        # The rest of the pipeline still ran: the kernel vectorized.
        assert result.report.num_vectorized > 0
        rollback = [r for r in result.remarks if r.category == "rollback"]
        assert len(rollback) == 1
        assert rollback[0].pass_name == "instcombine"
        assert rollback[0].function == func.name
        assert rollback[0].remediation

    def test_slp_rollback_degrades_to_scalar(self):
        module, func = build()
        faults = FaultInjector(FaultSpec("slp", "raise"))
        result = compile_function(
            func, VectorizerConfig.lslp(), guard="guarded", faults=faults
        )
        verify_function(func)
        assert result.fell_back_to_scalar
        reference, ref_func = build()
        compile_function(ref_func, VectorizerConfig.o3())
        outcome = compare_runs(
            (reference, ref_func), (module, func), args=ARGS
        )
        assert outcome.equivalent, outcome.detail

    def test_corrupt_ir_caught_by_verifier(self):
        _, func = build()
        faults = FaultInjector(FaultSpec("dce", "corrupt-detach"), seed=3)
        result = compile_function(
            func, VectorizerConfig.lslp(), guard="guarded", faults=faults
        )
        verify_function(func)
        assert "dce" in result.rolled_back
        remark = next(r for r in result.remarks if r.pass_name == "dce")
        assert remark.phase == "verify"

    def test_uncloneable_ir_recovers_via_last_good_snapshot(self):
        """A type clobber survives the verifier but crashes the next
        pass's snapshot clone; the guard must fall back to its retained
        known-good state instead of propagating the clone error."""
        module, func = build()
        faults = FaultInjector(
            FaultSpec("instcombine", "corrupt-type-clobber"), seed=1
        )
        oracle = DifferentialOracle(module, args=ARGS)
        result = compile_function(
            func, VectorizerConfig.lslp(),
            guard=GuardPolicy(oracle=oracle, oracle_reference="input"),
            faults=faults,
        )
        verify_function(func)
        ref_module, ref_func = build()
        outcome = compare_runs(
            (ref_module, ref_func), (module, func), args=ARGS
        )
        assert outcome.equivalent, outcome.detail

    def test_unguarded_compile_still_raises(self):
        _, func = build()
        faults = FaultInjector(FaultSpec("instcombine", "raise"))
        with pytest.raises(Exception):
            compile_function(func, VectorizerConfig.lslp(), faults=faults)

    def test_guarded_result_unchanged_without_faults(self):
        _, plain_func = build()
        plain = compile_function(plain_func, VectorizerConfig.lslp())
        _, guarded_func = build()
        guarded = compile_function(
            guarded_func, VectorizerConfig.lslp(), guard="guarded"
        )
        assert print_function(plain_func) == print_function(guarded_func)
        assert plain.static_cost == guarded.static_cost
        assert guarded.rolled_back == []
        assert guarded.remarks == []

    def test_report_names_are_populated(self):
        """CompileResult.report must carry real names even under O3,
        where the vectorizer pass never runs."""
        _, func = build()
        result = compile_function(func, VectorizerConfig.o3())
        assert result.report.function == func.name
        assert result.report.config == "O3"


class TestStrictMode:
    def test_strict_reraises_pass_crash(self):
        _, func = build()
        faults = FaultInjector(FaultSpec("cse", "raise"))
        with pytest.raises(PassCrashError) as info:
            compile_function(
                func, VectorizerConfig.lslp(), guard="strict",
                faults=faults,
            )
        assert info.value.pass_name == "cse"
        assert info.value.function == func.name
        # Even strict mode restores the function before raising.
        verify_function(func)

    def test_strict_reraises_invalid_ir(self):
        _, func = build()
        faults = FaultInjector(
            FaultSpec("instcombine", "corrupt-dangling-operand"), seed=1
        )
        with pytest.raises(InvalidIRError):
            compile_function(
                func, VectorizerConfig.lslp(), guard="strict",
                faults=faults,
            )
        verify_function(func)

    def test_strict_reraises_miscompile(self):
        module, func = build()
        faults = FaultInjector(
            FaultSpec("slp", "corrupt-swap-operands"), seed=0
        )
        oracle = DifferentialOracle(module, args=ARGS)
        with pytest.raises(MiscompileError):
            compile_function(
                func, VectorizerConfig.lslp(),
                guard=GuardPolicy(mode="strict", oracle=oracle),
                faults=faults,
            )
        verify_function(func)

    def test_bad_guard_spec_rejected(self):
        _, func = build()
        with pytest.raises(ValueError, match="unknown guard"):
            compile_function(func, VectorizerConfig.lslp(), guard="bogus")
        with pytest.raises(ValueError, match="unknown guard mode"):
            GuardPolicy(mode="lenient")


# ---------------------------------------------------------------------------
# Differential oracle
# ---------------------------------------------------------------------------


class TestDifferentialOracle:
    def test_mismatch_rolls_back_to_scalar(self):
        module, func = build()
        faults = FaultInjector(
            FaultSpec("slp", "corrupt-swap-operands"), seed=0
        )
        oracle = DifferentialOracle(module, args=ARGS)
        result = compile_function(
            func, VectorizerConfig.lslp(), guard="guarded",
            oracle=oracle, faults=faults,
        )
        verify_function(func)
        assert "oracle" in result.rolled_back
        assert result.fell_back_to_scalar
        miscompiles = [
            r for r in result.remarks if r.category == "miscompile"
        ]
        assert len(miscompiles) == 1
        assert miscompiles[0].severity is Severity.WARNING
        # The surviving function equals the clean scalar baseline.
        ref_module, ref_func = build()
        compile_function(ref_func, VectorizerConfig.lslp())
        outcome = compare_runs(
            (ref_module, ref_func), (module, func), args=ARGS
        )
        assert outcome.equivalent, outcome.detail

    def test_clean_compile_passes_oracle(self):
        module, func = build()
        oracle = DifferentialOracle(module, args=ARGS, seeds=(0, 1, 2))
        result = compile_function(
            func, VectorizerConfig.lslp(), guard="guarded", oracle=oracle
        )
        assert "oracle" not in result.rolled_back
        assert result.report.num_vectorized > 0

    def test_oracle_counts_interpreter_crash_as_mismatch(self):
        """IR whose execution fails (rather than producing wrong
        values) must also read as a mismatch, not raise."""
        module, func = build()
        oracle = DifferentialOracle(module, args=None)  # missing 'i'
        detail = oracle.check(func, func)
        assert detail is not None
        assert "execution failed" in detail

    def test_input_reference_catches_scalar_miscompile(self):
        module, func = build()
        faults = FaultInjector(
            FaultSpec("cse-post-unroll", "corrupt-swap-operands"), seed=1
        )
        oracle = DifferentialOracle(module, args=ARGS)
        policy = GuardPolicy(oracle=oracle, oracle_reference="input")
        result = compile_function(
            func, VectorizerConfig.lslp(), guard=policy, faults=faults
        )
        verify_function(func)
        ref_module, ref_func = build()
        outcome = compare_runs(
            (ref_module, ref_func), (module, func), args=ARGS
        )
        assert outcome.equivalent, outcome.detail


# ---------------------------------------------------------------------------
# Budgets
# ---------------------------------------------------------------------------


class TestBudgets:
    def test_lookahead_budget_caps_evals(self):
        _, unlimited_func = build()
        unlimited = compile_function(
            unlimited_func, VectorizerConfig.lslp()
        )
        evals = unlimited.report.stats.lookahead_evals
        assert evals > 2, "kernel must exercise look-ahead"

        cap = 2
        _, func = build()
        config = VectorizerConfig.lslp().with_budget(
            Budget(max_lookahead_evals=cap)
        )
        result = compile_function(func, config)
        verify_function(func)
        assert result.report.stats.lookahead_evals <= cap + 1
        budget_remarks = [
            r for r in result.remarks if r.category == "budget"
        ]
        assert budget_remarks, "budget exhaustion must leave a remark"
        assert budget_remarks[0].pass_name == "slp"

    def test_exhausted_budget_still_correct(self):
        module, func = build()
        config = VectorizerConfig.lslp().with_budget(
            Budget(max_lookahead_evals=1)
        )
        compile_function(func, config)
        verify_function(func)
        ref_module, ref_func = build()
        compile_function(ref_func, VectorizerConfig.o3())
        outcome = compare_runs(
            (ref_module, ref_func), (module, func), args=ARGS
        )
        assert outcome.equivalent, outcome.detail

    def test_exhaustive_budget_falls_back_to_greedy(self):
        base = VectorizerConfig.lslp()
        exhaustive = VectorizerConfig(
            name="LSLP-X",
            enable_reordering=True,
            look_ahead_depth=base.look_ahead_depth,
            multi_node_max_size=None,
            reorder_strategy="exhaustive",
        )
        _, free_func = build()
        free = compile_function(free_func, exhaustive)
        free_evals = free.report.stats.lookahead_evals
        assert free_evals > 0

        from dataclasses import replace

        capped = replace(
            exhaustive,
            budget=Budget(max_reorder_assignments=1),
        )
        _, func = build()
        result = compile_function(func, capped)
        verify_function(func)
        assert result.report.stats.lookahead_evals < free_evals
        remarks = [r for r in result.remarks if r.category == "budget"]
        assert remarks, "greedy fallback must be recorded as a remark"
        assert any("greedy" in r.message for r in remarks)

    def test_wall_clock_budget_degrades_gracefully(self):
        module, func = build()
        config = VectorizerConfig.lslp().with_budget(
            Budget(max_seconds=0.0)
        )
        result = compile_function(func, config)
        verify_function(func)
        assert result.report.num_vectorized == 0
        ref_module, ref_func = build()
        compile_function(ref_func, VectorizerConfig.o3())
        outcome = compare_runs(
            (ref_module, ref_func), (module, func), args=ARGS
        )
        assert outcome.equivalent, outcome.detail

    def test_meter_dedups_events(self):
        meter = BudgetMeter(Budget(max_lookahead_evals=1))
        meter.start_function()
        for _ in range(10):
            meter.lookahead_allowed()
            meter.charge_lookahead()
        kinds = [event.kind for event in meter.events]
        assert kinds.count("lookahead") == 1

    def test_unlimited_budget_never_trips(self):
        meter = BudgetMeter(Budget.unlimited())
        meter.start_function()
        meter.charge_lookahead(10**9)
        assert meter.lookahead_allowed()
        assert not meter.time_exceeded()
        assert meter.events == []


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(KERNEL)
    return str(path)


class TestRobustnessCLI:
    def test_run_verify_reports_match(self, kernel_file, capsys):
        assert main(["run", kernel_file, "--arg", "i=8",
                     "--verify"]) == 0
        out = capsys.readouterr().out
        assert "outputs match" in out

    def test_run_verify_rejects_no_guard(self, kernel_file):
        with pytest.raises(SystemExit, match="verify requires"):
            main(["run", kernel_file, "--arg", "i=8", "--verify",
                  "--no-guard"])

    def test_missing_required_arg(self, kernel_file):
        with pytest.raises(SystemExit, match="requires argument"):
            main(["run", kernel_file])
        with pytest.raises(SystemExit, match="requires argument"):
            main(["run", kernel_file, "--verify"])

    def test_malformed_arg_value(self, kernel_file):
        with pytest.raises(SystemExit, match="not a number"):
            main(["run", kernel_file, "--arg", "i=abc"])

    def test_malformed_arg_shape(self, kernel_file):
        with pytest.raises(SystemExit, match="malformed --arg"):
            main(["run", kernel_file, "--arg", "i"])
        with pytest.raises(SystemExit, match="malformed --arg"):
            main(["run", kernel_file, "--arg", "=5"])

    def test_float_arg_still_parses(self, kernel_file, capsys):
        assert main(["run", kernel_file, "--arg", "i=8",
                     "--arg", "x=1.5"]) == 0

    def test_lslp_knobs_warn_on_other_configs(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--config", "slp",
                     "--look-ahead", "4"]) == 0
        err = capsys.readouterr().err
        assert "--look-ahead ignored" in err
        assert "SLP" in err

    def test_no_warning_for_lslp(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--look-ahead", "4"]) == 0
        assert "ignored" not in capsys.readouterr().err

    def test_budget_remark_printed(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--remarks",
                     "--max-lookahead-evals", "2"]) == 0
        out = capsys.readouterr().out
        assert "warning: budget" in out

    def test_strict_cli_fails_cleanly(self, kernel_file, capsys, monkeypatch):
        import repro.cli as cli_module

        real = cli_module.compile_function

        def exploding(func, config, target=None, **kwargs):
            faults = FaultInjector(FaultSpec("dce", "raise"))
            return real(func, config, target, faults=faults, **kwargs)

        monkeypatch.setattr(cli_module, "compile_function", exploding)
        assert main(["compile", kernel_file, "--strict"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_guarded_cli_recovers(self, kernel_file, capsys, monkeypatch):
        import repro.cli as cli_module

        real = cli_module.compile_function

        def exploding(func, config, target=None, **kwargs):
            faults = FaultInjector(FaultSpec("dce", "raise"))
            return real(func, config, target, faults=faults, **kwargs)

        monkeypatch.setattr(cli_module, "compile_function", exploding)
        assert main(["compile", kernel_file]) == 0
        err = capsys.readouterr().err
        assert "rolled back" in err


# ---------------------------------------------------------------------------
# Diagnostics plumbing
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_remark_render(self):
        remark = Remark(
            Severity.WARNING, "rollback", "boom",
            function="kernel", pass_name="dce", remediation="fix it",
        )
        text = remark.render()
        assert "warning" in text and "@kernel" in text
        assert "'dce'" in text and "hint: fix it" in text

    def test_engine_collects_in_order(self):
        engine = DiagnosticEngine()
        engine.note("a", "first")
        engine.warning("b", "second")
        engine.error("c", "third")
        assert [r.category for r in engine.remarks] == ["a", "b", "c"]
        assert len(engine.render()) == 3

    def test_error_taxonomy_fields(self):
        error = PassCrashError(
            "kaboom", function="kernel", pass_name="cse",
            remediation="rerun",
        )
        assert error.phase == "transform"
        assert error.function == "kernel"
        assert "kaboom" in str(error)
        assert isinstance(error, Exception)
