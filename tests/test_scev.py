"""Tests for scalar evolution: affine expressions and adjacency queries."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import AffineExpr, ScalarEvolution
from repro.ir import (
    Argument,
    Constant,
    Function,
    GlobalArray,
    I64,
    IRBuilder,
    Module,
)

small_ints = st.integers(min_value=-1000, max_value=1000)


@pytest.fixture
def setup():
    module = Module("m")
    a = module.add_global(GlobalArray("A", I64, 64))
    b = module.add_global(GlobalArray("B", I64, 64))
    func = Function("f", [("i", I64), ("j", I64)])
    builder = IRBuilder(func.add_block("entry"))
    return module, func, builder, a, b


class TestAffineExpr:
    def test_constant(self):
        expr = AffineExpr.constant(5)
        assert expr.is_constant
        assert expr.offset == 5

    def test_symbol(self):
        x = Argument(I64, "x")
        expr = AffineExpr.symbol(x)
        assert not expr.is_constant

    def test_addition_merges_terms(self):
        x = Argument(I64, "x")
        expr = AffineExpr.symbol(x, 2) + AffineExpr.symbol(x, 3)
        assert expr.terms[id(x)][1] == 5

    def test_subtraction_cancels(self):
        x = Argument(I64, "x")
        expr = AffineExpr.symbol(x) - AffineExpr.symbol(x)
        assert expr.is_constant
        assert expr.offset == 0

    def test_scaling(self):
        x = Argument(I64, "x")
        expr = (AffineExpr.symbol(x) + AffineExpr.constant(3)).scaled(4)
        assert expr.offset == 12
        assert expr.terms[id(x)][1] == 4

    def test_scale_by_zero(self):
        x = Argument(I64, "x")
        assert AffineExpr.symbol(x).scaled(0).is_constant

    def test_constant_difference(self):
        x = Argument(I64, "x")
        a = AffineExpr.symbol(x) + AffineExpr.constant(2)
        b = AffineExpr.symbol(x) + AffineExpr.constant(7)
        assert a.constant_difference(b) == 5
        assert b.constant_difference(a) == -5

    def test_difference_of_different_symbols_unknown(self):
        x = Argument(I64, "x")
        y = Argument(I64, "y")
        a = AffineExpr.symbol(x)
        b = AffineExpr.symbol(y)
        assert a.constant_difference(b) is None

    def test_difference_of_different_coeffs_unknown(self):
        x = Argument(I64, "x")
        a = AffineExpr.symbol(x, 2)
        b = AffineExpr.symbol(x, 3)
        assert a.constant_difference(b) is None

    def test_str_is_readable(self):
        x = Argument(I64, "x")
        expr = AffineExpr.symbol(x, 3) + AffineExpr.constant(7)
        assert "%x" in str(expr)
        assert "7" in str(expr)

    @given(small_ints, small_ints, small_ints)
    def test_ring_properties(self, c1, c2, factor):
        x = Argument(I64, "x")
        a = AffineExpr.symbol(x, c1) + AffineExpr.constant(c2)
        # (a + a) == a.scaled(2)
        assert (a + a) == a.scaled(2)
        # a - a == 0
        zero = a - a
        assert zero.is_constant and zero.offset == 0
        # distribution of scaling over +
        b = AffineExpr.symbol(x, 5) + AffineExpr.constant(1)
        assert (a + b).scaled(factor) == a.scaled(factor) + b.scaled(factor)


class TestIndexExpressions:
    def test_constant_index(self, setup):
        module, func, builder, a, b = setup
        scev = ScalarEvolution()
        expr = scev.index_expr(Constant(I64, 9))
        assert expr.is_constant and expr.offset == 9

    def test_add_and_mul(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        idx = builder.add(builder.mul(i, builder.i64(3)), builder.i64(2))
        scev = ScalarEvolution()
        expr = scev.index_expr(idx)
        assert expr.offset == 2
        assert expr.terms[id(i)][1] == 3

    def test_shl_as_multiply(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        idx = builder.shl(i, builder.i64(2))
        expr = ScalarEvolution().index_expr(idx)
        assert expr.terms[id(i)][1] == 4

    def test_sub(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        idx = builder.sub(i, builder.i64(1))
        expr = ScalarEvolution().index_expr(idx)
        assert expr.offset == -1

    def test_opaque_becomes_symbol(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        opaque = builder.xor(i, builder.i64(5))
        expr = ScalarEvolution().index_expr(opaque)
        assert expr.terms[id(opaque)][1] == 1

    def test_symbolic_times_symbolic_is_opaque(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        j = func.argument("j")
        product = builder.mul(i, j)
        expr = ScalarEvolution().index_expr(product)
        assert expr.terms.keys() == {id(product)}


class TestPointerQueries:
    def test_consecutive_geps(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        p0 = builder.gep(a, builder.add(i, builder.i64(0)))
        p1 = builder.gep(a, builder.add(i, builder.i64(1)))
        scev = ScalarEvolution()
        assert scev.are_consecutive(p0, p1)
        assert not scev.are_consecutive(p1, p0)
        assert scev.element_distance(p0, p1) == 1

    def test_different_bases_not_consecutive(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        pa = builder.gep(a, i)
        pb = builder.gep(b, builder.add(i, builder.i64(1)))
        scev = ScalarEvolution()
        assert not scev.are_consecutive(pa, pb)
        assert scev.element_distance(pa, pb) is None

    def test_nested_geps_accumulate(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        p0 = builder.gep(a, i)
        p1 = builder.gep(p0, builder.i64(3))
        scev = ScalarEvolution()
        assert scev.element_distance(builder.gep(a, i), p1) == 3

    def test_load_store_adjacency(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        l0 = builder.load(builder.gep(a, i))
        l1 = builder.load(builder.gep(a, builder.add(i, builder.i64(1))))
        scev = ScalarEvolution()
        assert scev.accesses_consecutive(l0, l1)
        assert not scev.accesses_consecutive(l1, l0)

    def test_strided_not_consecutive(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        p0 = builder.gep(a, builder.mul(i, builder.i64(2)))
        p1 = builder.gep(
            a, builder.add(builder.mul(i, builder.i64(2)), builder.i64(2))
        )
        assert not ScalarEvolution().are_consecutive(p0, p1)

    def test_pointer_argument_is_base(self):
        from repro.ir import PointerType

        func = Function("f", [("p", PointerType(I64))])
        builder = IRBuilder(func.add_block("entry"))
        p = func.argument("p")
        g0 = builder.gep(p, builder.i64(0))
        g1 = builder.gep(p, builder.i64(1))
        assert ScalarEvolution().are_consecutive(g0, g1)

    def test_memoization_returns_same_expr(self, setup):
        module, func, builder, a, b = setup
        i = func.argument("i")
        p = builder.gep(a, i)
        scev = ScalarEvolution()
        assert scev.pointer(p) is scev.pointer(p)
