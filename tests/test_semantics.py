"""Tests for scalar operation semantics, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import I8, I64
from repro.ir.semantics import (
    EvaluationError,
    eval_binop,
    eval_cmp,
    eval_int_binop,
    eval_unop,
)

i64_values = st.integers(min_value=-(2**63), max_value=2**63 - 1)
i8_values = st.integers(min_value=-128, max_value=127)


class TestIntegerSemantics:
    def test_add_wraps(self):
        assert eval_int_binop("add", 2**63 - 1, 1, 64) == -(2**63)

    def test_sub_wraps(self):
        assert eval_int_binop("sub", -(2**63), 1, 64) == 2**63 - 1

    def test_mul_wraps(self):
        assert eval_int_binop("mul", 2**32, 2**32, 64) == 0

    def test_sdiv_truncates_toward_zero(self):
        assert eval_int_binop("sdiv", 7, 2, 64) == 3
        assert eval_int_binop("sdiv", -7, 2, 64) == -3
        assert eval_int_binop("sdiv", 7, -2, 64) == -3

    def test_srem_matches_c(self):
        assert eval_int_binop("srem", 7, 3, 64) == 1
        assert eval_int_binop("srem", -7, 3, 64) == -1
        assert eval_int_binop("srem", 7, -3, 64) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            eval_int_binop("sdiv", 1, 0, 64)
        with pytest.raises(EvaluationError):
            eval_int_binop("srem", 1, 0, 64)

    def test_shl(self):
        assert eval_int_binop("shl", 1, 4, 64) == 16

    def test_shl_overflow_wraps(self):
        assert eval_int_binop("shl", 1, 63, 64) == -(2**63)

    def test_shift_past_width_is_zero(self):
        assert eval_int_binop("shl", 1, 64, 64) == 0
        assert eval_int_binop("lshr", -1, 64, 64) == 0

    def test_ashr_fills_sign(self):
        assert eval_int_binop("ashr", -8, 2, 64) == -2
        assert eval_int_binop("ashr", -1, 100, 64) == -1

    def test_lshr_is_logical(self):
        assert eval_int_binop("lshr", -1, 1, 64) == 2**63 - 1

    def test_bitwise(self):
        assert eval_int_binop("and", 0b1100, 0b1010, 64) == 0b1000
        assert eval_int_binop("or", 0b1100, 0b1010, 64) == 0b1110
        assert eval_int_binop("xor", 0b1100, 0b1010, 64) == 0b0110

    def test_min_max(self):
        assert eval_int_binop("smin", -5, 3, 64) == -5
        assert eval_int_binop("smax", -5, 3, 64) == 3

    def test_unknown_opcode(self):
        with pytest.raises(ValueError):
            eval_int_binop("pow", 2, 3, 64)


class TestUnaryAndCmp:
    def test_not(self):
        assert eval_unop("not", 0, I64) == -1
        assert eval_unop("not", -1, I64) == 0

    def test_fneg(self):
        assert eval_unop("fneg", 2.5, None) == -2.5

    def test_cmp_int(self):
        assert eval_cmp("slt", 1, 2) == 1
        assert eval_cmp("sge", 1, 2) == 0
        assert eval_cmp("eq", 3, 3) == 1

    def test_cmp_float(self):
        assert eval_cmp("olt", 1.5, 2.0) == 1
        assert eval_cmp("one", 1.5, 1.5) == 0

    def test_unknown_predicate(self):
        with pytest.raises(ValueError):
            eval_cmp("ult", 1, 2)


class TestFloatDispatch:
    def test_eval_binop_dispatches_float(self):
        from repro.ir import F64

        assert eval_binop("fadd", 1.5, 2.0, F64) == 3.5
        assert eval_binop("fmul", 3.0, 2.0, F64) == 6.0

    def test_fdiv_by_zero_raises(self):
        from repro.ir import F64

        with pytest.raises(EvaluationError):
            eval_binop("fdiv", 1.0, 0.0, F64)


class TestProperties:
    @given(i64_values, i64_values)
    def test_add_commutes(self, a, b):
        assert eval_int_binop("add", a, b, 64) == eval_int_binop(
            "add", b, a, 64
        )

    @given(i64_values, i64_values, i64_values)
    def test_add_associates(self, a, b, c):
        left = eval_int_binop(
            "add", eval_int_binop("add", a, b, 64), c, 64
        )
        right = eval_int_binop(
            "add", a, eval_int_binop("add", b, c, 64), 64
        )
        assert left == right

    @given(i64_values, i64_values)
    def test_mul_commutes(self, a, b):
        assert eval_int_binop("mul", a, b, 64) == eval_int_binop(
            "mul", b, a, 64
        )

    @given(i64_values, i64_values, i64_values)
    def test_and_associates(self, a, b, c):
        left = eval_int_binop(
            "and", eval_int_binop("and", a, b, 64), c, 64
        )
        right = eval_int_binop(
            "and", a, eval_int_binop("and", b, c, 64), 64
        )
        assert left == right

    @given(i8_values, i8_values)
    def test_results_stay_in_width(self, a, b):
        for opcode in ("add", "sub", "mul", "and", "or", "xor",
                       "smin", "smax"):
            result = eval_int_binop(opcode, a, b, 8)
            assert -128 <= result <= 127

    @given(i64_values, st.integers(min_value=0, max_value=200))
    def test_shifts_stay_in_width(self, a, shift):
        for opcode in ("shl", "lshr", "ashr"):
            result = eval_int_binop(opcode, a, shift, 64)
            assert -(2**63) <= result < 2**63

    @given(i64_values, i64_values)
    def test_sdiv_srem_identity(self, a, b):
        if b == 0:
            return
        q = eval_int_binop("sdiv", a, b, 64)
        r = eval_int_binop("srem", a, b, 64)
        # a == q*b + r in wrapped arithmetic
        qb = eval_int_binop("mul", q, b, 64)
        assert eval_int_binop("add", qb, r, 64) == a

    @given(i64_values)
    def test_double_not_is_identity(self, a):
        assert eval_unop("not", eval_unop("not", a, I64), I64) == a
