"""Tests for the batch compilation service (repro.service).

The headline guarantees: parallel batches produce byte-identical
reports to serial ones; a warm cache performs zero vectorizer
invocations; admission degrades gracefully (and degraded artifacts are
never cached); and the figure runner measures identically through the
service and around it.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest

from repro.cli import main
from repro.costmodel.targets import skylake_like
from repro.experiments.runner import (
    measure_kernel,
    measure_suite,
    PAPER_CONFIGS,
)
from repro.kernels.catalog import ALL_KERNELS
from repro.kernels.suites import SUITE_SPECS
from repro.robustness import Budget
from repro.service import (
    AdmissionPolicy,
    CompilationService,
    CompileCache,
    job_for_kernel,
    job_for_source,
)
from repro.slp.vectorizer import VectorizerConfig

KERNELS = list(ALL_KERNELS.values())[:4]
CONFIGS = [VectorizerConfig.slp(), VectorizerConfig.lslp()]


def _jobs(**overrides):
    return [
        job_for_kernel(kernel, config, skylake_like(), **overrides)
        for kernel in KERNELS for config in CONFIGS
    ]


def _fingerprint(batch):
    return [(r.job.name, r.job.config.name, r.report_json, r.ir_text,
             r.static_cost) for r in batch.results]


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


def test_parallel_batch_matches_serial_byte_for_byte():
    serial = CompilationService(cache=None, jobs=1).compile_batch(_jobs())
    parallel = CompilationService(cache=None, jobs=4).compile_batch(_jobs())
    assert serial.ok and parallel.ok
    assert _fingerprint(serial) == _fingerprint(parallel)
    assert parallel.stats.queue_depth_highwater >= 1


def test_warm_batch_is_byte_identical_and_compiles_nothing():
    service = CompilationService(cache=CompileCache(), jobs=1)
    cold = service.compile_batch(_jobs())
    warm = service.compile_batch(_jobs())
    assert cold.ok and warm.ok
    assert _fingerprint(cold) == _fingerprint(warm)
    assert cold.stats.misses == len(_jobs())
    assert warm.stats.vectorizer_invocations == 0
    assert warm.stats.memory_hits == len(_jobs())
    assert warm.stats.hit_rate == 1.0
    assert all(r.cache_tier == "memory" for r in warm.results)


def test_disk_cache_warms_a_fresh_service(tmp_path):
    cold_service = CompilationService(
        cache=CompileCache.with_disk(tmp_path), jobs=1
    )
    cold = cold_service.compile_batch(_jobs())
    fresh_service = CompilationService(
        cache=CompileCache.with_disk(tmp_path), jobs=1
    )
    warm = fresh_service.compile_batch(_jobs())
    assert _fingerprint(cold) == _fingerprint(warm)
    assert warm.stats.vectorizer_invocations == 0
    assert warm.stats.disk_hits == len(_jobs())


def test_rehydrated_module_is_executable(tmp_path):
    """A cache-hit result's module (parsed back from printed IR) runs
    and produces the same interpreter state as the cold compile."""
    from repro.interp import compare_runs

    kernel = KERNELS[0]
    job = job_for_kernel(kernel, VectorizerConfig.lslp(), skylake_like())
    service = CompilationService(cache=CompileCache.with_disk(tmp_path))
    cold = service.compile_job(job)
    warm = CompilationService(
        cache=CompileCache.with_disk(tmp_path)
    ).compile_job(job)
    assert warm.cache_tier == "disk"
    cold_module = cold.module
    warm_module = warm.module
    comparison = compare_runs(
        (cold_module, cold_module.get_function(kernel.entry)),
        (warm_module, warm_module.get_function(kernel.entry)),
        args=kernel.default_args,
    )
    assert comparison.equivalent, comparison.detail


# ---------------------------------------------------------------------------
# Budgets and admission
# ---------------------------------------------------------------------------


def test_module_budget_exhaustion_degrades_but_completes():
    config = VectorizerConfig.lslp().with_budget(
        Budget(max_module_seconds=0.0)
    )
    jobs = [job_for_kernel(k, config, skylake_like()) for k in KERNELS]
    batch = CompilationService(cache=None).compile_batch(jobs)
    assert batch.ok
    assert batch.stats.budget_exhausted == len(jobs)
    for result in batch.results:
        assert result.report.num_vectorized == 0
        assert any(r.category == "budget" for r in result.remarks)


def test_admission_degrades_to_scalar_and_skips_the_cache():
    service = CompilationService(
        cache=CompileCache(),
        admission=AdmissionPolicy(max_total_seconds=0.0),
    )
    batch = service.compile_batch(_jobs())
    assert batch.ok
    assert batch.stats.degraded == len(_jobs())
    assert batch.stats.stores == 0          # degraded != true artifact
    for result in batch.results:
        assert result.degraded
        assert result.report.num_vectorized == 0
        assert any(r.category == "admission" for r in result.remarks)
    # the same jobs compile at full fidelity once the budget allows
    recovered = CompilationService(cache=service.cache).compile_batch(
        [job_for_kernel(KERNELS[0], VectorizerConfig.lslp(),
                        skylake_like())]
    )
    assert recovered.stats.misses == 1      # nothing poisoned the cache


def test_admission_refuses_when_degradation_is_disabled():
    service = CompilationService(
        cache=None,
        admission=AdmissionPolicy(max_total_seconds=0.0,
                                  degrade_to_scalar=False),
    )
    batch = service.compile_batch(_jobs())
    assert not batch.ok
    assert batch.stats.refused == len(_jobs())
    assert all("refused" in r.error for r in batch.results)


def test_per_job_budget_installed_by_admission():
    policy = AdmissionPolicy(job_budget=Budget.service_default())
    service = CompilationService(cache=None, admission=policy)
    job = job_for_kernel(KERNELS[0], VectorizerConfig.lslp(),
                         skylake_like())
    assert job.config.budget is None
    result = service.compile_job(job)
    assert result.ok


# ---------------------------------------------------------------------------
# Oracle sweeps and error containment
# ---------------------------------------------------------------------------


def test_verify_runs_sweeps_pass_on_correct_kernels():
    jobs = _jobs(verify_runs=3)
    batch = CompilationService(cache=None).compile_batch(jobs)
    assert batch.ok
    assert _fingerprint(batch) != []


def test_front_end_error_is_contained_per_job():
    good = job_for_kernel(KERNELS[0], VectorizerConfig.lslp(),
                          skylake_like())
    bad = job_for_source("broken", "void kernel( {",
                         VectorizerConfig.lslp())
    batch = CompilationService(cache=None).compile_batch([bad, good])
    assert not batch.ok
    assert batch.results[0].error != ""
    assert batch.results[1].ok          # one bad job never sinks a batch
    assert batch.stats.errors == 1


# ---------------------------------------------------------------------------
# Figure runner integration
# ---------------------------------------------------------------------------


def _strip_seconds(measurement):
    data = asdict(measurement)
    data.pop("compile_seconds")
    return data


def test_measure_kernel_matches_fresh_compile():
    kernel = KERNELS[0]
    for config in PAPER_CONFIGS:
        fresh = measure_kernel(kernel, config, service=False)
        cached = measure_kernel(kernel, config)
        again = measure_kernel(kernel, config)
        assert _strip_seconds(fresh) == _strip_seconds(cached)
        assert _strip_seconds(cached) == _strip_seconds(again)


def test_measure_suite_matches_fresh_compile():
    spec = SUITE_SPECS[0]
    config = PAPER_CONFIGS[-1]
    fresh = measure_suite(spec, config, service=False)
    cached = measure_suite(spec, config)
    assert _strip_seconds(fresh) == _strip_seconds(cached)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_batch_catalog_memory_cache(capsys):
    rc = main(["batch", "catalog", "--configs", "scalar,lslp",
               "--report"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "cache:" in out and "vectorizer invocations:" in out
    assert "[LSLP]" in out


def test_cli_batch_warm_disk_run_meets_hit_rate(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    base = ["batch", "catalog", "--configs", "slp,lslp",
            "--cache", "disk", "--cache-dir", cache_dir]
    assert main(base) == 0
    capsys.readouterr()
    assert main(base + ["--min-hit-rate", "0.99"]) == 0
    out = capsys.readouterr().out
    assert "vectorizer invocations: 0" in out


def test_cli_batch_min_hit_rate_fails_cold(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    rc = main(["batch", "catalog", "--configs", "lslp",
               "--cache", "disk", "--cache-dir", cache_dir,
               "--min-hit-rate", "0.99"])
    assert rc == 1
    assert "below the required" in capsys.readouterr().err


def test_cli_batch_directory_source(tmp_path, capsys):
    (tmp_path / "k1.c").write_text(ALL_KERNELS[KERNELS[0].name].source)
    rc = main(["batch", str(tmp_path), "--configs", "lslp", "--report"])
    assert rc == 0
    assert "k1" in capsys.readouterr().out


def test_cli_batch_parallel_jobs(capsys):
    rc = main(["batch", "catalog", "--configs", "lslp", "--jobs", "2"])
    assert rc == 0
    assert "2 worker(s)" in capsys.readouterr().out
