"""Tests for the content-addressed compile cache (repro.service.cache).

The key contract: stable across processes and hash seeds, and a miss on
*any* ingredient change (payload, config, target, pipeline, guard
settings).  The storage contract: disk entries round-trip through JSON,
corruption is a miss (never a crash), and the LRU memory tier evicts in
insertion order.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.costmodel.targets import expensive_shuffle, skylake_like
from repro.kernels.catalog import ALL_KERNELS
from repro.service import (
    CacheEntry,
    CompileCache,
    compute_key,
    DiskCache,
    execute_job,
    job_for_kernel,
    job_for_source,
    MemoryCache,
)
from repro.service.jobs import PIPELINE_NAME
from repro.slp.vectorizer import VectorizerConfig

KERNEL = next(iter(ALL_KERNELS.values()))


def _job(config=None, **overrides):
    config = config if config is not None else VectorizerConfig.lslp()
    return job_for_kernel(KERNEL, config, skylake_like(), **overrides)


def _entry(job=None) -> CacheEntry:
    outcome = execute_job(job if job is not None else _job())
    assert outcome.error == ""
    return outcome.entry


# ---------------------------------------------------------------------------
# Key stability
# ---------------------------------------------------------------------------


def test_key_is_deterministic_within_process():
    assert _job().cache_key() == _job().cache_key()


def test_key_is_stable_across_processes():
    """The key must not depend on PYTHONHASHSEED or object identity:
    a warm disk cache from one process must hit in the next."""
    kernel_name = KERNEL.name
    program = (
        "from repro.costmodel.targets import skylake_like\n"
        "from repro.kernels.catalog import ALL_KERNELS\n"
        "from repro.service import job_for_kernel\n"
        "from repro.slp.vectorizer import VectorizerConfig\n"
        f"kernel = ALL_KERNELS[{kernel_name!r}]\n"
        "job = job_for_kernel(kernel, VectorizerConfig.lslp(),"
        " skylake_like())\n"
        "print(job.cache_key())\n"
    )
    src_dir = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir)
    keys = set()
    for hash_seed in ("1", "4242"):
        env["PYTHONHASHSEED"] = hash_seed
        proc = subprocess.run(
            [sys.executable, "-c", program], env=env,
            capture_output=True, text=True, check=True,
        )
        keys.add(proc.stdout.strip())
    keys.add(_job().cache_key())
    assert len(keys) == 1


@pytest.mark.parametrize("other", [
    _job(VectorizerConfig.slp()),
    _job(VectorizerConfig.lslp(look_ahead_depth=2, name="LSLP-LA2")),
    job_for_kernel(KERNEL, VectorizerConfig.lslp(), expensive_shuffle()),
    _job(guard="strict"),
    _job(verify_runs=3),
    _job(verify_seed=7),
    _job(args={"i": 3}),
])
def test_key_misses_on_any_ingredient_change(other):
    assert other.cache_key() != _job().cache_key()


def test_key_misses_on_source_change():
    base = job_for_source("k", "void kernel() { }",
                          VectorizerConfig.lslp())
    changed = job_for_source("k", "void kernel() { /*x*/ }",
                             VectorizerConfig.lslp())
    assert base.cache_key() != changed.cache_key()


def test_key_misses_on_pipeline_change():
    config = VectorizerConfig.lslp()
    target = skylake_like()
    a = compute_key("source", KERNEL.source, config, target,
                    pipeline=PIPELINE_NAME)
    b = compute_key("source", KERNEL.source, config, target,
                    pipeline="o3+slp/v1")
    assert a != b


# ---------------------------------------------------------------------------
# Memory tier
# ---------------------------------------------------------------------------


def test_memory_lru_evicts_oldest():
    cache = MemoryCache(capacity=2)
    entry = _entry()
    for key in ("a", "b", "c"):
        cache.put(key, entry)
    assert cache.get("a") is None
    assert cache.get("b") is entry and cache.get("c") is entry
    assert cache.evictions == 1


def test_memory_get_refreshes_recency():
    cache = MemoryCache(capacity=2)
    entry = _entry()
    cache.put("a", entry)
    cache.put("b", entry)
    cache.get("a")          # "b" is now least-recent
    cache.put("c", entry)
    assert cache.get("b") is None
    assert cache.get("a") is entry


# ---------------------------------------------------------------------------
# Disk tier
# ---------------------------------------------------------------------------


def test_disk_roundtrip(tmp_path):
    entry = _entry()
    disk = DiskCache(tmp_path)
    disk.put(entry.key, entry)
    loaded = disk.get(entry.key)
    assert loaded is not None
    assert loaded.ir_text == entry.ir_text
    assert loaded.report == entry.report
    assert loaded.static_cost == entry.static_cost
    assert loaded.compile_seconds == entry.compile_seconds


def test_corrupted_disk_entry_is_a_miss_not_a_crash(tmp_path):
    entry = _entry()
    disk = DiskCache(tmp_path)
    disk.put(entry.key, entry)
    path = disk._path(entry.key)
    path.write_text("{ not json")
    assert disk.get(entry.key) is None
    assert not path.exists()          # poisoned entry is dropped
    assert disk.corrupt == 1
    # and the slot is usable again
    disk.put(entry.key, entry)
    assert disk.get(entry.key) is not None


def test_truncated_ir_payload_is_a_miss(tmp_path):
    """Valid JSON whose IR no longer parses must also be treated as
    corruption: the rehydrate check runs on every disk hit."""
    entry = _entry()
    disk = DiskCache(tmp_path)
    disk.put(entry.key, entry)
    path = disk._path(entry.key)
    data = json.loads(path.read_text())
    data["ir_text"] = data["ir_text"][: len(data["ir_text"]) // 2]
    path.write_text(json.dumps(data))
    assert disk.get(entry.key) is None
    assert disk.corrupt == 1


def test_key_mismatch_inside_entry_is_a_miss(tmp_path):
    entry = _entry()
    disk = DiskCache(tmp_path)
    disk.put(entry.key, entry)
    path = disk._path(entry.key)
    data = json.loads(path.read_text())
    data["key"] = "0" * 64
    path.write_text(json.dumps(data))
    assert disk.get(entry.key) is None


def test_schema_bump_invalidates_old_entries(tmp_path):
    entry = _entry()
    disk = DiskCache(tmp_path)
    disk.put(entry.key, entry)
    path = disk._path(entry.key)
    data = json.loads(path.read_text())
    data["schema"] = 0
    path.write_text(json.dumps(data))
    assert disk.get(entry.key) is None


# ---------------------------------------------------------------------------
# Combined tiers
# ---------------------------------------------------------------------------


def test_disk_hit_promotes_to_memory(tmp_path):
    entry = _entry()
    cache = CompileCache.with_disk(tmp_path)
    cache.put(entry.key, entry)
    cache.memory.clear()
    got, tier = cache.get(entry.key)
    assert got is not None and tier == "disk"
    got, tier = cache.get(entry.key)
    assert got is not None and tier == "memory"


def test_disk_survives_across_cache_instances(tmp_path):
    entry = _entry()
    CompileCache.with_disk(tmp_path).put(entry.key, entry)
    got, tier = CompileCache.with_disk(tmp_path).get(entry.key)
    assert got is not None and tier == "disk"
    assert got.ir_text == entry.ir_text
