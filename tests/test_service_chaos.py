"""Service-level chaos sweeps (``pytest -m chaos``).

Every test arms deterministic, seeded service faults — real worker
kills in the process pool, worker hangs against per-job deadlines,
disk-cache corruption and ENOSPC — and asserts the service-level
contract: every submitted job completes (no lost jobs), recovered
artifacts are byte-identical to a fault-free run, deadlines actually
bound wall-clock time, and a killed worker never takes down more than
the jobs it was running.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.cli import main
from repro.costmodel.targets import skylake_like
from repro.kernels.catalog import ALL_KERNELS
from repro.robustness import ServiceFaultPlan, ServiceFaultSpec
from repro.service import (
    CompilationService,
    CompileCache,
    DiskCache,
    job_for_kernel,
    JobError,
    JobOutcome,
    MemoryCache,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.service.resilience import BreakerPolicy, ERROR_TIMEOUT
from repro.slp.vectorizer import VectorizerConfig

pytestmark = pytest.mark.chaos

KERNELS = list(ALL_KERNELS.values())[:4]
CONFIGS = [VectorizerConfig.slp(), VectorizerConfig.lslp()]

#: fast retries so the sweeps stay test-suite friendly
RETRY = RetryPolicy(max_retries=2, backoff_base=0.005, backoff_cap=0.02)


def _jobs(chaos=None):
    jobs = [
        job_for_kernel(kernel, config, skylake_like())
        for kernel in KERNELS for config in CONFIGS
    ]
    if chaos is not None:
        jobs = [replace(job, chaos=chaos) for job in jobs]
    return jobs


def _fingerprint(batch):
    return sorted(
        (r.job.name, r.job.config.name, r.ir_text, r.static_cost)
        for r in batch.results
    )


def _service(jobs=1, cache=None, **overrides):
    overrides.setdefault("retry", RETRY)
    overrides.setdefault("breaker", BreakerPolicy(failure_threshold=0))
    return CompilationService(cache=cache, jobs=jobs,
                              resilience=ResiliencePolicy(**overrides))


def _fault_free_fingerprint():
    return _fingerprint(_service(jobs=1).compile_batch(_jobs()))


# ---------------------------------------------------------------------------
# Worker kills
# ---------------------------------------------------------------------------


def _kill_plan(rate=1.0, seed=0):
    return ServiceFaultPlan(
        specs=(ServiceFaultSpec(site="worker-kill", rate=rate),),
        seed=seed,
    )


def test_serial_kill_sweep_recovers_every_job_byte_identically():
    batch = _service(jobs=1).compile_batch(_jobs(_kill_plan()))
    assert len(batch.results) == len(_jobs())
    assert batch.ok
    assert all(r.attempts == 2 for r in batch.results)
    assert batch.stats.retries == len(_jobs())
    assert batch.stats.retry_succeeded == len(_jobs())
    assert _fingerprint(batch) == _fault_free_fingerprint()


def test_pool_kill_sweep_survives_real_worker_deaths():
    """Every first attempt calls os._exit(33) inside a real pool
    worker: the executor is rebuilt and every job still completes,
    byte-identical to a fault-free run — a killed worker costs retries,
    never results."""
    batch = _service(jobs=2).compile_batch(_jobs(_kill_plan()))
    assert len(batch.results) == len(_jobs())   # no lost jobs
    assert batch.ok
    assert batch.stats.pool_rebuilds >= 1
    assert batch.stats.retry_succeeded >= 1
    assert all(not r.degraded for r in batch.results)
    assert _fingerprint(batch) == _fault_free_fingerprint()


def test_pool_partial_kill_fails_no_bystanders():
    """A seeded 50% kill rate: jobs whose fault never fires must not be
    lost or degraded by other jobs' worker deaths — collateral losses
    are retried as worker-lost, not surfaced."""
    batch = _service(jobs=2).compile_batch(
        _jobs(_kill_plan(rate=0.5, seed=7)))
    assert len(batch.results) == len(_jobs())
    assert batch.ok
    assert all(r.rung == "full" for r in batch.results)
    assert _fingerprint(batch) == _fault_free_fingerprint()


# ---------------------------------------------------------------------------
# Hangs and deadlines
# ---------------------------------------------------------------------------


def test_pool_hang_is_killed_at_the_deadline_and_retried():
    plan = ServiceFaultPlan(
        specs=(ServiceFaultSpec(site="worker-hang", rate=1.0,
                                seconds=30.0),),
        seed=0,
    )
    jobs = _jobs(plan)[:2]
    timeout = 0.5
    started = time.monotonic()
    batch = _service(jobs=2, job_timeout=timeout).compile_batch(jobs)
    elapsed = time.monotonic() - started
    assert len(batch.results) == len(jobs)
    assert batch.ok
    assert batch.stats.timeouts >= 1
    assert batch.stats.pool_rebuilds >= 1
    assert all(r.attempts > 1 for r in batch.results)
    # The acceptance bound: no job may block past
    # timeout * (max_retries + 1); both ran concurrently, plus slack
    # for pool rebuild and compile time.
    assert elapsed < len(jobs) * timeout * (RETRY.max_retries + 1) + 5.0


def test_persistent_timeouts_walk_the_ladder_not_an_exception():
    """A job that times out at *every* rung must end as a structured
    refusal with timeout and ladder metrics — never a hang or raise."""
    plan = ServiceFaultPlan(
        specs=(ServiceFaultSpec(site="worker-hang", rate=1.0,
                                max_fires=99, seconds=30.0),),
        seed=0,
    )
    job = replace(_jobs()[0], chaos=plan)
    batch = _service(
        jobs=2, job_timeout=0.3,
        retry=RetryPolicy(max_retries=0, backoff_base=0.005),
    ).compile_batch([job])
    [result] = batch.results
    assert not result.ok
    assert result.error_info is not None
    assert result.error_info.kind == "refused"
    assert batch.stats.timeouts >= 2
    assert batch.stats.degrade_refused == 1


def test_timed_out_jobs_land_on_the_ladder_with_remark_and_metric(
        monkeypatch):
    """A deadline expiry whose retries are exhausted degrades (remark +
    ``service.degrade.*`` metric), it does not surface as an error."""
    import repro.service.pool as pool_module

    real = pool_module.execute_job

    def runner(job):
        if job.config.enabled:
            error = JobError(kind=ERROR_TIMEOUT, message="deadline",
                             job_name=job.name,
                             config_name=job.config.name,
                             attempt=job.attempt)
            return JobOutcome(entry=None, error=error.render(),
                              error_info=error)
        return real(job)

    monkeypatch.setattr(pool_module, "execute_job", runner)
    batch = _service(
        jobs=1, retry=RetryPolicy(max_retries=0),
    ).compile_batch([_jobs()[0]])
    [result] = batch.results
    assert result.ok
    assert result.rung == "scalar"
    assert any(r.category == "resilience" for r in result.remarks)
    assert batch.stats.degrade_scalar == 1
    assert batch.stats.errors == 0


# ---------------------------------------------------------------------------
# Cache faults
# ---------------------------------------------------------------------------


def test_corrupted_cache_writes_degrade_to_recompiles(tmp_path):
    plan = ServiceFaultPlan(
        specs=(ServiceFaultSpec(site="cache-corrupt", rate=1.0),),
        seed=0,
    )
    disk = DiskCache(tmp_path, fault_plan=plan)
    jobs = _jobs()
    cold_service = _service(
        jobs=1, cache=CompileCache(memory=None, memory_capacity=0,
                                   disk=disk))
    cold = cold_service.compile_batch(jobs)
    assert cold.ok
    assert disk.faults_fired  # the writes really were torn
    warm = cold_service.compile_batch(jobs)
    assert warm.ok
    # Every read of a torn entry must be a miss-and-recompile.
    assert warm.stats.disk_hits == 0
    assert warm.stats.vectorizer_invocations == len(jobs)
    assert disk.corrupt >= 1
    assert _fingerprint(warm) == _fingerprint(cold)


def test_enospc_cache_writes_degrade_to_memory_only(tmp_path):
    plan = ServiceFaultPlan(
        specs=(ServiceFaultSpec(site="cache-enospc", rate=1.0),),
        seed=0,
    )
    disk = DiskCache(tmp_path, fault_plan=plan)
    cache = CompileCache(memory=MemoryCache(256), disk=disk)
    service = _service(jobs=1, cache=cache)
    jobs = _jobs()
    cold = service.compile_batch(jobs)
    assert cold.ok
    assert disk.faults_fired
    # Nothing landed on disk, but the memory tier still serves hits.
    warm = service.compile_batch(jobs)
    assert warm.ok
    assert warm.stats.memory_hits == len(jobs)
    assert warm.stats.disk_hits == 0


def test_slow_cache_reads_add_latency_not_failure(tmp_path):
    plan = ServiceFaultPlan(
        specs=(ServiceFaultSpec(site="cache-slow", rate=1.0,
                                seconds=0.01),),
        seed=0,
    )
    jobs = _jobs()[:2]
    disk = DiskCache(tmp_path)
    service = _service(
        jobs=1, cache=CompileCache(memory=None, memory_capacity=0,
                                   disk=disk))
    cold = service.compile_batch(jobs)
    assert cold.ok
    disk.fault_plan = plan
    warm = service.compile_batch(jobs)
    assert warm.ok
    assert warm.stats.disk_hits == len(jobs)
    assert ("cache-slow", jobs[0].cache_key()) in disk.faults_fired


# ---------------------------------------------------------------------------
# The CLI chaos surface (what CI's chaos-smoke job drives)
# ---------------------------------------------------------------------------


def test_cli_chaos_batch_writes_a_faithful_report(tmp_path):
    import json

    clean_report = tmp_path / "clean.json"
    chaos_report = tmp_path / "chaos.json"
    base = ["batch", "catalog", "--configs", "lslp", "--jobs", "2",
            "--retry-backoff", "0.005"]
    assert main(base + ["--report-out", str(clean_report)]) == 0
    assert main(base + [
        "--cache", "disk", "--cache-dir", str(tmp_path / "cache"),
        "--chaos", "worker-kill:0.5,cache-corrupt:0.5",
        "--chaos-seed", "7", "--job-timeout", "30",
        "--report-out", str(chaos_report),
    ]) == 0

    clean = json.loads(clean_report.read_text())
    chaos = json.loads(chaos_report.read_text())
    assert chaos["ok"] is True
    assert chaos["lost_jobs"] == 0
    assert chaos["stats"]["retries"] > 0
    assert chaos["stats"]["retry_succeeded"] > 0
    assert {j["status"] for j in chaos["jobs"]} == {"compiled"}

    def hashes(doc):
        return {(j["name"], j["config"]): j["ir_sha256"]
                for j in doc["jobs"]}

    assert hashes(clean) == hashes(chaos)
    assert any(j["attempts"] > 1 for j in chaos["jobs"])
