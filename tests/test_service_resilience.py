"""Tests for the service resilience layer (repro.service.resilience).

Unit coverage for the policy objects — deterministic jittered backoff,
the degradation ladder's rung arithmetic, the circuit breaker state
machine, structured job errors — plus integration coverage of the pool
retry loop (serial executor, injectable clocks) and the service's
ladder/breaker rounds via a monkeypatched job runner.  The hypothesis
fuzz at the bottom drives arbitrary disk-cache corruption through the
read path: every corruption must degrade to a miss-and-recompile, never
an exception or a stale hit.
"""

from __future__ import annotations

import functools
from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.targets import skylake_like
from repro.kernels.catalog import ALL_KERNELS
from repro.robustness import Budget, ServiceFaultPlan, ServiceFaultSpec
from repro.service import (
    CompilationService,
    CompileCache,
    DiskCache,
    execute_job,
    job_for_kernel,
    JobOutcome,
    MemoryCache,
    ResiliencePolicy,
    RetryPolicy,
    run_jobs,
)
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_OPEN,
    BreakerPolicy,
    CircuitBreaker,
    ERROR_COMPILE,
    ERROR_TIMEOUT,
    ERROR_WORKER_CRASHED,
    is_retryable,
    job_at_rung,
    JobError,
    next_rung,
    ROUTE_FULL,
    ROUTE_PROBE,
    ROUTE_SHED,
    RUNG_FULL,
    RUNG_REDUCED,
    RUNG_REFUSE,
    RUNG_SCALAR,
)
from repro.slp.vectorizer import VectorizerConfig

KERNELS = list(ALL_KERNELS.values())
KERNEL = KERNELS[0]


def _job(config=None, **overrides):
    config = config if config is not None else VectorizerConfig.lslp()
    return job_for_kernel(KERNEL, config, skylake_like(), **overrides)


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


def test_backoff_is_deterministic_per_key_and_attempt():
    policy = RetryPolicy(seed=3)
    assert (policy.backoff_seconds("k1", 1)
            == policy.backoff_seconds("k1", 1))
    assert (policy.backoff_seconds("k1", 1)
            != policy.backoff_seconds("k2", 1))
    assert (policy.backoff_seconds("k1", 1)
            != policy.backoff_seconds("k1", 2))


def test_backoff_grows_within_jitter_band_and_caps():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                         backoff_cap=0.3, jitter=0.5)
    for attempt, raw in ((1, 0.1), (2, 0.2), (3, 0.3), (9, 0.3)):
        delay = policy.backoff_seconds("key", attempt)
        assert raw * 0.5 <= delay <= raw * 1.5
    assert policy.backoff_seconds("key", 0) == 0.0


def test_backoff_without_jitter_is_exact():
    policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0,
                         backoff_cap=10.0, jitter=0.0)
    assert policy.backoff_seconds("k", 1) == pytest.approx(0.05)
    assert policy.backoff_seconds("k", 3) == pytest.approx(0.2)


def test_error_kind_classification():
    assert is_retryable(ERROR_WORKER_CRASHED)
    assert is_retryable(ERROR_TIMEOUT)
    assert not is_retryable(ERROR_COMPILE)
    assert not is_retryable("refused")


def test_job_error_render_carries_attribution():
    error = JobError(kind=ERROR_WORKER_CRASHED, message="boom",
                     job_name="k", config_name="LSLP",
                     cache_key="abcdef0123456789", functions=("f", "g"),
                     attempt=1, traceback="Trace | tail")
    text = error.render()
    assert "worker-crashed" in text
    assert "attempt 2" in text
    assert "abcdef012345" in text
    assert "fn f,g" in text
    assert "boom" in text
    assert "tail" in text
    data = error.to_dict()
    assert data["retryable"] is True
    assert data["functions"] == ["f", "g"]


# ---------------------------------------------------------------------------
# The degradation ladder
# ---------------------------------------------------------------------------


def test_rung_full_is_identity():
    job = _job()
    assert job_at_rung(job, RUNG_FULL) is job


def test_reduced_rung_strips_exhaustive_selection_and_caps_budget():
    config = replace(VectorizerConfig.lslp(), plan_select="exhaustive")
    job = _job(config)
    reduced = job_at_rung(job, RUNG_REDUCED)
    assert reduced.config.plan_select == "greedy-savings"
    assert reduced.config.budget is not None
    cap = Budget.reduced()
    assert (reduced.config.budget.max_lookahead_evals
            <= cap.max_lookahead_evals)


def test_reduced_rung_takes_elementwise_min_with_existing_budget():
    tight = Budget(max_lookahead_evals=10)
    job = _job(replace(VectorizerConfig.lslp(),
                       budget=tight))
    reduced = job_at_rung(job, RUNG_REDUCED)
    assert reduced.config.budget.max_lookahead_evals == 10
    assert (reduced.config.budget.max_seconds
            == Budget.reduced().max_seconds)


def test_scalar_rung_disables_vectorization():
    scalar = job_at_rung(_job(), RUNG_SCALAR)
    assert scalar.config.enabled is False


def test_next_rung_descends_and_bottoms_out():
    job = _job(replace(VectorizerConfig.lslp(),
                       plan_select="exhaustive"))
    assert next_rung(job, RUNG_FULL) == RUNG_REDUCED
    assert next_rung(job, RUNG_REDUCED) == RUNG_SCALAR
    assert next_rung(job, RUNG_SCALAR) == RUNG_REFUSE


def test_next_rung_skips_rungs_that_do_not_change_the_job():
    # Already compiled with the reduced rung's exact posture: stepping
    # down must go straight to scalar, not re-run the identical compile.
    config = replace(VectorizerConfig.lslp(),
                     plan_select="greedy-savings",
                     budget=Budget.reduced())
    job = _job(config)
    assert job_at_rung(job, RUNG_REDUCED) == job
    assert next_rung(job, RUNG_FULL) == RUNG_SCALAR


# ---------------------------------------------------------------------------
# The circuit breaker
# ---------------------------------------------------------------------------


def test_breaker_trips_after_consecutive_failures():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
    for _ in range(2):
        breaker.record_failure("LSLP")
    assert breaker.state("LSLP") == BREAKER_CLOSED
    breaker.record_failure("LSLP")
    assert breaker.state("LSLP") == BREAKER_OPEN
    assert breaker.opened == 1


def test_breaker_success_resets_the_failure_streak():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
    breaker.record_failure("LSLP")
    breaker.record_success("LSLP")
    breaker.record_failure("LSLP")
    assert breaker.state("LSLP") == BREAKER_CLOSED


def test_breaker_sheds_then_probes_then_closes_on_success():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                           probe_after=2))
    breaker.record_failure("LSLP")
    assert breaker.route("LSLP") == ROUTE_SHED
    assert breaker.route("LSLP") == ROUTE_SHED
    assert breaker.route("LSLP") == ROUTE_PROBE
    # While the probe is out, everything else keeps shedding.
    assert breaker.route("LSLP") == ROUTE_SHED
    breaker.record_success("LSLP", probe=True)
    assert breaker.state("LSLP") == BREAKER_CLOSED
    assert breaker.route("LSLP") == ROUTE_FULL
    assert breaker.closed == 1


def test_breaker_probe_failure_reopens():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1,
                                           probe_after=0))
    breaker.record_failure("LSLP")
    assert breaker.route("LSLP") == ROUTE_PROBE
    breaker.record_failure("LSLP", probe=True)
    assert breaker.state("LSLP") == BREAKER_OPEN
    assert breaker.route("LSLP") == ROUTE_PROBE  # probe_after=0
    breaker.record_success("LSLP", probe=True)
    assert breaker.state("LSLP") == BREAKER_CLOSED


def test_breaker_shards_are_independent_and_snapshot():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
    breaker.record_failure("bad")
    assert breaker.route("good") == ROUTE_FULL
    assert breaker.route("bad") == ROUTE_SHED
    snap = breaker.snapshot()
    assert snap["bad"]["state"] == BREAKER_OPEN
    assert snap["bad"]["shed_total"] == 1


def test_breaker_threshold_zero_disables():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=0))
    for _ in range(10):
        breaker.record_failure("LSLP")
    assert breaker.route("LSLP") == ROUTE_FULL


# ---------------------------------------------------------------------------
# Pool retry loop (serial executor, real execute_job, injected chaos)
# ---------------------------------------------------------------------------


def _crashy_plan(max_fires=1, rate=1.0):
    return ServiceFaultPlan(
        specs=(ServiceFaultSpec(site="worker-kill", rate=rate,
                                max_fires=max_fires),),
        seed=0,
    )


FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.001,
                         backoff_cap=0.002)


def test_serial_pool_retries_an_injected_crash_to_success():
    jobs = [(0, _job(chaos=_crashy_plan()))]
    events = []
    [(index, outcome)] = list(run_jobs(iter(jobs), workers=1,
                                       retry=FAST_RETRY,
                                       on_event=events.append))
    assert index == 0
    assert outcome.error == ""
    assert outcome.attempts == 2
    kinds = [e.kind for e in events]
    assert kinds.count("retry") == 1
    assert events[0].delay > 0.0


def test_serial_pool_exhausts_the_retry_budget():
    jobs = [(0, _job(chaos=_crashy_plan(max_fires=99)))]
    [(_, outcome)] = list(run_jobs(iter(jobs), workers=1,
                                   retry=FAST_RETRY))
    assert outcome.error_info is not None
    assert outcome.error_info.kind == ERROR_WORKER_CRASHED
    assert outcome.attempts == FAST_RETRY.max_retries + 1


def test_serial_pool_reports_depth_including_the_retry_backlog():
    jobs = [(i, _job(chaos=_crashy_plan())) for i in range(3)]
    depths = []
    outcomes = list(run_jobs(iter(jobs), workers=1, retry=FAST_RETRY,
                             on_depth=depths.append))
    assert all(outcome.error == "" for _, outcome in outcomes)
    # While later jobs run their first attempt, earlier crashed jobs
    # sit in the retry backlog: the depth must see them.
    assert max(depths) >= 2


def test_serial_pool_enforces_deadlines_post_hoc():
    jobs = [(0, _job())]
    [(_, outcome)] = list(run_jobs(
        iter(jobs), workers=1, job_timeout=1e-9,
        retry=RetryPolicy(max_retries=0),
    ))
    assert outcome.error_info is not None
    assert outcome.error_info.kind == ERROR_TIMEOUT


def test_timeout_consumes_a_shrunken_retry_budget():
    # Budget of 3 units: a crash costs 1 (3 retries possible), but a
    # timeout costs 2 — the job gets at most one more attempt.
    policy = RetryPolicy(max_retries=3, backoff_base=0.001,
                         timeout_attempt_cost=2)
    jobs = [(0, _job())]
    [(_, outcome)] = list(run_jobs(iter(jobs), workers=1,
                                   job_timeout=1e-9, retry=policy))
    assert outcome.error_info is not None
    assert outcome.error_info.kind == ERROR_TIMEOUT
    # 2 units per attempt: attempts 0 and 2 ran, then 4 > 3 stopped it.
    assert outcome.attempts == 3


def test_compile_errors_are_permanent_not_retried():
    bad = job_for_kernel(KERNEL, VectorizerConfig.lslp(),
                         skylake_like())
    bad = replace(bad, source="int kernel(", name="broken")
    depths = []
    [(_, outcome)] = list(run_jobs(iter([(0, bad)]), workers=1,
                                   retry=FAST_RETRY,
                                   on_depth=depths.append))
    assert outcome.error_info is not None
    assert outcome.error_info.kind == ERROR_COMPILE
    assert outcome.attempts == 1
    assert outcome.error_info.traceback != ""


# ---------------------------------------------------------------------------
# Service rounds: ladder + breaker integration (monkeypatched runner)
# ---------------------------------------------------------------------------


def _flaky_runner(monkeypatch, fail_when):
    """Replace the pool's job runner: failures are simulated
    worker crashes decided by ``fail_when(job)``; successes run the
    real compile."""
    import repro.service.pool as pool_module

    calls = []

    def runner(job):
        calls.append(job)
        if fail_when(job):
            error = JobError(kind=ERROR_WORKER_CRASHED,
                             message="simulated worker death",
                             job_name=job.name,
                             config_name=job.config.name,
                             attempt=job.attempt)
            return JobOutcome(entry=None, error=error.render(),
                              error_info=error)
        return execute_job(job)

    monkeypatch.setattr(pool_module, "execute_job", runner)
    return calls


def _resilience(**overrides):
    overrides.setdefault("retry", FAST_RETRY)
    return ResiliencePolicy(**overrides)


def test_ladder_degrades_to_scalar_when_vectorized_compiles_crash(
        monkeypatch):
    _flaky_runner(monkeypatch, lambda job: job.config.enabled)
    service = CompilationService(
        cache=CompileCache(), jobs=1,
        resilience=_resilience(breaker=BreakerPolicy(0)),
    )
    batch = service.compile_batch([_job()])
    [result] = batch.results
    assert result.ok
    assert result.rung == "scalar"
    assert result.degraded
    categories = [r.category for r in result.remarks]
    assert "resilience" in categories
    assert batch.stats.degrade_reduced == 1
    assert batch.stats.degrade_scalar == 1
    assert batch.stats.retries > 0
    # Degraded artifacts are never cached.
    assert batch.stats.stores == 0
    warm = service.compile_batch([_job()])
    assert warm.stats.misses == 1


def test_ladder_bottoming_out_is_a_structured_refusal(monkeypatch):
    _flaky_runner(monkeypatch, lambda job: True)
    service = CompilationService(
        cache=None, jobs=1,
        resilience=_resilience(breaker=BreakerPolicy(0)),
    )
    batch = service.compile_batch([_job()])
    [result] = batch.results
    assert not result.ok
    assert "refused" in result.error
    assert result.error_info is not None
    assert result.error_info.kind == "refused"
    assert result.rung == "refuse"
    assert batch.stats.degrade_refused == 1
    assert batch.stats.refused == 1


def test_no_ladder_surfaces_the_failure_as_an_error(monkeypatch):
    _flaky_runner(monkeypatch, lambda job: job.config.enabled)
    service = CompilationService(
        cache=None, jobs=1,
        resilience=_resilience(ladder=False,
                               breaker=BreakerPolicy(0)),
    )
    batch = service.compile_batch([_job()])
    [result] = batch.results
    assert not result.ok
    assert result.error_info.kind == ERROR_WORKER_CRASHED
    assert batch.stats.errors == 1
    assert batch.stats.degrade_scalar == 0


def test_breaker_trips_across_batches_and_sheds_straight_down(
        monkeypatch):
    calls = _flaky_runner(monkeypatch, lambda job: job.config.enabled)
    service = CompilationService(
        cache=None, jobs=1,
        resilience=_resilience(
            retry=RetryPolicy(max_retries=0, backoff_base=0.001),
            breaker=BreakerPolicy(failure_threshold=2, probe_after=5),
        ),
    )
    first = service.compile_batch([_job() for _ in range(3)])
    assert first.stats.breaker_opened >= 1
    assert service.breaker.state("LSLP") == BREAKER_OPEN
    assert first.breaker_states["LSLP"]["state"] == BREAKER_OPEN

    calls.clear()
    second = service.compile_batch([_job() for _ in range(2)])
    # Both jobs shed straight to a lower rung: no full-fidelity
    # dispatch ran for them.
    assert second.stats.breaker_shed == 2
    assert all(not job.config.enabled or job.config.budget is not None
               for job in calls)
    assert all(r.ok and r.rung != "full" for r in second.results)


def test_breaker_probe_success_closes_the_shard(monkeypatch):
    healthy = {"flag": False}
    calls = _flaky_runner(
        monkeypatch,
        lambda job: job.config.enabled and not healthy["flag"])
    service = CompilationService(
        cache=None, jobs=1,
        resilience=_resilience(
            retry=RetryPolicy(max_retries=0, backoff_base=0.001),
            breaker=BreakerPolicy(failure_threshold=1, probe_after=0),
        ),
    )
    service.compile_batch([_job()])
    assert service.breaker.state("LSLP") == BREAKER_OPEN
    healthy["flag"] = True
    probe = service.compile_batch([_job()])
    [result] = probe.results
    assert result.ok and result.rung == "full"
    assert probe.stats.breaker_probes == 1
    assert probe.stats.breaker_closed == 1
    assert service.breaker.state("LSLP") == BREAKER_CLOSED


def test_retry_success_is_counted(monkeypatch):
    seen = []
    _flaky_runner(monkeypatch,
                  lambda job: not seen.append(job) and len(seen) == 1)
    service = CompilationService(cache=None, jobs=1,
                                 resilience=_resilience())
    batch = service.compile_batch([_job()])
    [result] = batch.results
    assert result.ok
    assert result.attempts == 2
    assert result.retried
    assert batch.stats.retries == 1
    assert batch.stats.retry_succeeded == 1


# ---------------------------------------------------------------------------
# Disk-cache corruption fuzz: every corruption is a miss, never a crash
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=1)
def _entry_bytes() -> tuple[str, bytes]:
    outcome = execute_job(_job())
    assert outcome.error == ""
    return outcome.entry.key, outcome.entry.to_json().encode("utf-8")


@st.composite
def _corruptions(draw):
    _, payload = _entry_bytes()
    mode = draw(st.sampled_from(
        ("truncate", "bitflip", "partial-json", "zero-byte")))
    if mode == "truncate":
        cut = draw(st.integers(min_value=0,
                               max_value=len(payload) - 1))
        return payload[:cut]
    if mode == "bitflip":
        flips = draw(st.lists(
            st.tuples(st.integers(0, len(payload) - 1),
                      st.integers(0, 7)),
            min_size=1, max_size=8))
        data = bytearray(payload)
        for position, bit in flips:
            data[position] ^= 1 << bit
        return bytes(data)
    if mode == "partial-json":
        brace = draw(st.integers(min_value=1, max_value=payload.count(b"}")))
        cut = -1
        for _ in range(brace):
            cut = payload.index(b"}", cut + 1)
        return payload[:cut]
    return b""


@settings(max_examples=30, deadline=None)
@given(corrupted=_corruptions())
def test_any_disk_corruption_degrades_to_a_miss(tmp_path_factory,
                                                corrupted):
    key, payload = _entry_bytes()
    root = tmp_path_factory.mktemp("fuzz")
    disk = DiskCache(root)
    path = disk._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(corrupted)
    got = disk.get(key)
    if corrupted == payload:
        # A no-op bit flip pair can reconstruct the original: a hit is
        # the correct answer there.
        assert got is not None
        return
    assert got is None
    assert disk.misses >= 1
    # And the slot is usable again: the recompile round-trips.
    from repro.service.cache import CacheEntry

    disk.put(key, CacheEntry.from_json(payload.decode("utf-8")))
    assert disk.get(key) is not None


def test_zero_byte_entry_is_a_miss(tmp_path):
    key, payload = _entry_bytes()
    disk = DiskCache(tmp_path)
    path = disk._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"")
    assert disk.get(key) is None
    assert disk.corrupt == 1
