"""Cross-worker telemetry stitching (``TelemetrySession``): artifact
validity, the serial-vs-pool metric-set contract, and the chaos-batch
stitched-trace acceptance scenario."""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest

from repro import obs
from repro.costmodel.targets import skylake_like
from repro.kernels.catalog import ALL_KERNELS
from repro.obs import metrics as obs_metrics
from repro.robustness import ServiceFaultPlan, ServiceFaultSpec
from repro.obs.validate import (
    validate_chrome_trace,
    validate_prometheus_text,
    validate_remarks_jsonl,
    validate_stats_json,
)
from repro.service import (
    CompilationService,
    CompileCache,
    execute_job,
    job_for_kernel,
    ResiliencePolicy,
    RetryPolicy,
    TELEMETRY_ARTIFACTS,
    TelemetrySession,
)
from repro.service.resilience import BreakerPolicy
from repro.slp.vectorizer import VectorizerConfig

KERNELS = list(ALL_KERNELS.values())[:2]
CONFIGS = [VectorizerConfig.lslp()]
RETRY = RetryPolicy(max_retries=2, backoff_base=0.005, backoff_cap=0.02)


def _jobs(chaos=None, kernels=KERNELS, configs=CONFIGS):
    jobs = [
        replace(job_for_kernel(kernel, config, skylake_like()),
                capture_telemetry=True)
        for kernel in kernels for config in configs
    ]
    if chaos is not None:
        jobs = [replace(job, chaos=chaos) for job in jobs]
    return jobs


def _service(jobs=1, telemetry=None, cache=None):
    return CompilationService(
        cache=cache, jobs=jobs, telemetry=telemetry,
        resilience=ResiliencePolicy(
            retry=RETRY, breaker=BreakerPolicy(failure_threshold=0),
        ),
    )


def _read(paths, name):
    with open(paths[name]) as handle:
        return handle.read()


# ---------------------------------------------------------------------------
# Artifacts + job lifecycle
# ---------------------------------------------------------------------------


def test_session_writes_four_valid_artifacts(tmp_path):
    session = TelemetrySession(str(tmp_path / "tele"))
    service = _service(jobs=1, telemetry=session)
    batch = service.compile_batch(_jobs())
    assert batch.ok
    paths = session.close(service.breaker.snapshot())

    assert set(paths) == set(TELEMETRY_ARTIFACTS)
    for name in TELEMETRY_ARTIFACTS:
        assert os.path.exists(paths[name])
    assert validate_chrome_trace(
        _read(paths, "trace.json"),
        require_spans=["job.attempt"],
    ) == []
    assert validate_prometheus_text(
        _read(paths, "metrics.prom"),
        require_metrics=["lslp_service_job_latency_seconds",
                         "lslp_service_queue_wait_seconds"],
    ) == []
    assert validate_stats_json(
        _read(paths, "metrics.json"),
        require_metrics=["service.job_latency_seconds"],
    ) == []
    assert validate_remarks_jsonl(
        _read(paths, "events.jsonl"),
        require_records=["job"],
    ) == []


def test_job_lifecycle_events_cold_then_warm(tmp_path):
    session = TelemetrySession(str(tmp_path / "tele"))
    service = _service(jobs=1, telemetry=session,
                       cache=CompileCache())
    jobs = _jobs()
    assert service.compile_batch(jobs).ok      # cold: compiled
    assert service.compile_batch(jobs).ok      # warm: every job hits
    session.close()

    by_event = {}
    for event in session.events:
        if event.get("type") == "job":
            by_event.setdefault(event["event"], []).append(event)
    # cold pass: queued -> dispatched -> completed for every job
    assert len(by_event["dispatched"]) == len(jobs)
    assert len(by_event["completed"]) == len(jobs)
    # warm pass: the same jobs queued again, then served from cache
    assert len(by_event["queued"]) == 2 * len(jobs)
    assert len(by_event["hit"]) == len(jobs)
    assert all("tier" in event for event in by_event["hit"])


def test_trace_places_worker_spans_in_worker_lanes(tmp_path):
    session = TelemetrySession(str(tmp_path / "tele"))
    service = _service(jobs=1, telemetry=session)
    service.compile_batch(_jobs())
    paths = session.close()

    assert len(session.stitcher.worker_lanes) >= 1
    events = json.loads(_read(paths, "trace.json"))["traceEvents"]
    attempts = [event for event in events
                if event["ph"] == "X"
                and event["name"] == "job.attempt"]
    assert len(attempts) == len(_jobs())
    lanes = set(session.stitcher.worker_lanes.values())
    assert {event["pid"] for event in attempts} <= lanes
    assert all("job_index" in event["args"] for event in attempts)


def test_capture_telemetry_is_outside_the_cache_key():
    job = job_for_kernel(KERNELS[0], CONFIGS[0], skylake_like())
    assert (replace(job, capture_telemetry=True).cache_key()
            == job.cache_key())


def test_failed_attempt_still_ships_its_telemetry_payload():
    plan = ServiceFaultPlan(
        specs=(ServiceFaultSpec(site="worker-kill", rate=1.0),),
        seed=0,
    )
    outcome = execute_job(_jobs(plan)[0])
    assert outcome.error
    payload = outcome.telemetry
    assert payload is not None
    assert payload["pid"] == os.getpid()
    assert any(span["name"] == "job.attempt"
               for span in payload["spans"])


def test_execute_job_capture_restores_obs_globals():
    from repro.obs import records as obs_records
    from repro.obs import tracing as obs_tracing

    outcome = execute_job(_jobs()[0])
    assert outcome.entry is not None
    assert outcome.telemetry is not None
    assert obs_tracing.active() is None
    assert not obs_metrics.publishing()
    assert len(obs_metrics.registry()) == 0
    assert obs_records.active_sink() is None


# ---------------------------------------------------------------------------
# Satellite: serial and pooled batches publish the same metric set
# ---------------------------------------------------------------------------


def test_serial_and_pool_batches_publish_identical_metric_sets(
        tmp_path):
    def metric_names(workers, sub):
        obs.reset()
        session = TelemetrySession(str(tmp_path / sub))
        service = _service(jobs=workers, telemetry=session)
        batch = service.compile_batch(_jobs())
        assert batch.ok
        batch.stats.publish()
        names = set(obs_metrics.registry().snapshot())
        session.close()
        return names

    serial = metric_names(1, "serial")
    pooled = metric_names(2, "pool")
    assert serial == pooled
    assert "service.job_latency_seconds" in serial
    assert "service.queue_wait_seconds" in serial


# ---------------------------------------------------------------------------
# Chaos: a kill-swept pool batch still stitches into one valid trace
# ---------------------------------------------------------------------------


@pytest.mark.chaos
def test_chaos_pool_batch_stitches_one_trace_with_attempt_spans(
        tmp_path):
    """Every first attempt dies inside a real pool worker
    (``os._exit``): the stitched trace must still validate, with one
    lane per worker process that shipped a payload and ``job.attempt``
    spans for the resubmitted (attempt >= 1) executions."""
    plan = ServiceFaultPlan(
        specs=(ServiceFaultSpec(site="worker-kill", rate=1.0),),
        seed=0,
    )
    jobs = _jobs(plan, kernels=list(ALL_KERNELS.values())[:4])
    session = TelemetrySession(str(tmp_path / "tele"))
    service = _service(jobs=2, telemetry=session)
    batch = service.compile_batch(jobs)
    assert batch.ok
    assert len(batch.results) == len(jobs)      # no lost jobs
    paths = session.close(service.breaker.snapshot())

    assert validate_chrome_trace(_read(paths, "trace.json")) == []
    events = json.loads(_read(paths, "trace.json"))["traceEvents"]

    # one process lane per worker pid that shipped a payload, each
    # with its own process_name metadata
    lanes = session.stitcher.worker_lanes
    assert len(lanes) >= 1
    named = {event["pid"] for event in events
             if event.get("ph") == "M"
             and event["name"] == "process_name"}
    assert set(lanes.values()) <= named

    # resubmitted jobs appear as attempt >= 1 spans in worker lanes
    resubmitted = [
        event for event in events
        if event["ph"] == "X" and event["name"] == "job.attempt"
        and event["args"].get("attempt", 0) >= 1
    ]
    assert len(resubmitted) == len(jobs)
    assert {event["pid"] for event in resubmitted} <= \
        set(lanes.values())

    # the job track saw the retries the service recovered through
    retries = [event for event in session.events
               if event.get("event") == "retry"]
    assert len(retries) >= 1
    assert batch.stats.retry_succeeded >= 1
