"""Tests for shuffle-based regrouping of in-tree gather lanes.

When a gather node's lanes are values that this same SLP tree already
holds in vector registers, the code generator emits a single
shufflevector instead of an extract+insert chain, and the cost model
charges it as one shuffle.  (Real LLVM performs the same regrouping.)
"""

import pytest

from repro.interp import compare_runs
from repro.ir import verify_function
from repro.opt import compile_function
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel

# Per-lane cross products: the mul operands are lane-swapped halves of
# the B and C vectors, so the vectorized form needs regrouping shuffles.
CROSS = """
double A[1024], B[1024], C[1024];
void kernel(long i) {
    double b0 = B[i + 0];
    double b1 = B[i + 1];
    double c0 = C[i + 0];
    double c1 = C[i + 1];
    A[i + 0] = b0 * c0 + c1 * b1;
    A[i + 1] = b1 * c1 + c0 * b0;
}
"""


def vectorize(source, config=None):
    reference = build_kernel(source)
    module, func = build_kernel(source)
    result = compile_function(func, config or VectorizerConfig.lslp())
    verify_function(func)
    return reference, (module, func), result


class TestShuffleGather:
    def test_boy_surface_style_regroups_with_shuffles(self):
        """The boy-surface kernel's SLP tree gathers in-tree lanes; the
        emitted code must use shuffles, not extract/insert chains."""
        from repro.kernels import BOY_SURFACE

        module, func = BOY_SURFACE.build()
        result = compile_function(func, VectorizerConfig.slp())
        verify_function(func)
        assert result.report.num_vectorized == 1
        ops = [inst.opcode for inst in func.entry]
        assert "shufflevector" in ops
        assert "insertelement" not in ops
        assert "extractelement" not in ops

    def test_cross_kernel_correct(self):
        reference, transformed, result = vectorize(CROSS)
        out = compare_runs(reference, transformed, args={"i": 4})
        assert out.equivalent, out.detail

    def test_cost_matches_cycles_direction(self):
        """If the cost model accepts a tree, the simulated cycles must
        not regress versus the scalar baseline (the boy-surface bug this
        feature fixed)."""
        from repro.experiments.runner import measure_kernel
        from repro.kernels import EVALUATION_KERNELS

        for kernel in EVALUATION_KERNELS:
            o3 = measure_kernel(kernel, VectorizerConfig.o3())
            for config in (VectorizerConfig.slp_nr(),
                           VectorizerConfig.slp(),
                           VectorizerConfig.lslp()):
                measured = measure_kernel(kernel, config)
                assert measured.cycles <= o3.cycles, (
                    f"{kernel.name} under {config.name}"
                )

    def test_mixed_gather_still_uses_inserts(self):
        # one lane is an argument: no shuffle regroup possible
        source = """
long A[1024], B[1024];
void kernel(long i, long k) {
    A[i + 0] = B[i + 0] - (B[i + 1] ^ 1);
    A[i + 1] = B[i + 1] - k;
}
"""
        reference, (module, func), result = vectorize(source)
        if result.report.num_vectorized:
            ops = [inst.opcode for inst in func.entry]
            assert "insertelement" in ops
        out = compare_runs(reference, (module, func), args={"i": 4, "k": 9})
        assert out.equivalent, out.detail
