"""Tests for SLP graph construction: group nodes, multi-nodes, gathers."""

import pytest

from repro.analysis import ScalarEvolution
from repro.costmodel import skylake_like
from repro.slp import (
    BuildPolicy,
    GatherNode,
    GraphBuilder,
    LookAheadContext,
    MultiNode,
    VectorizableNode,
    collect_store_seeds,
)
from tests.conftest import build_kernel


def build_graph(source, policy=None):
    module, func = build_kernel(source)
    ctx = LookAheadContext(ScalarEvolution())
    target = skylake_like()
    seeds = collect_store_seeds(func.entry, ctx.scev, target)
    assert seeds, "kernel must produce a seed group"
    builder = GraphBuilder(policy or BuildPolicy(), target, ctx)
    graph = builder.build(seeds[0].stores)
    return module, func, graph, builder


def nodes_by_kind(graph):
    kinds = {"store": [], "load": [], "multi": [], "gather": [], "other": []}
    for node in graph.walk():
        if isinstance(node, MultiNode):
            kinds["multi"].append(node)
        elif isinstance(node, GatherNode):
            kinds["gather"].append(node)
        elif isinstance(node, VectorizableNode):
            kinds[node.opcode if node.opcode in ("store", "load")
                  else "other"].append(node)
    return kinds


class TestBasicShapes:
    def test_straight_copy_tree(self):
        _, _, graph, _ = build_graph("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i + 0];
    A[i + 1] = B[i + 1];
}
""")
        kinds = nodes_by_kind(graph)
        assert len(kinds["store"]) == 1
        assert len(kinds["load"]) == 1
        assert kinds["gather"] == []
        assert graph.root is kinds["store"][0]

    def test_binop_tree(self):
        _, _, graph, _ = build_graph("""
long A[64], B[64], C[64];
void kernel(long i) {
    A[i + 0] = B[i + 0] - C[i + 0];
    A[i + 1] = B[i + 1] - C[i + 1];
}
""")
        kinds = nodes_by_kind(graph)
        assert len(kinds["other"]) == 1      # the sub group
        assert len(kinds["load"]) == 2

    def test_commutative_becomes_multinode(self):
        _, _, graph, _ = build_graph("""
long A[64], B[64], C[64];
void kernel(long i) {
    A[i + 0] = B[i + 0] + C[i + 0];
    A[i + 1] = B[i + 1] + C[i + 1];
}
""")
        kinds = nodes_by_kind(graph)
        assert len(kinds["multi"]) == 1
        assert len(kinds["multi"][0].rows) == 1   # size-1 multi-node
        assert kinds["multi"][0].num_operands == 2

    def test_non_consecutive_loads_become_gather(self):
        _, _, graph, _ = build_graph("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[2*i + 0] - 1;
    A[i + 1] = B[2*i + 2] - 1;
}
""")
        kinds = nodes_by_kind(graph)
        assert any(
            all(v.opcode == "load" for v in g.lanes)
            for g in kinds["gather"]
        )

    def test_constant_operands_gather(self):
        _, _, graph, _ = build_graph("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i + 0] - 3;
    A[i + 1] = B[i + 1] - 4;
}
""")
        kinds = nodes_by_kind(graph)
        const_gathers = [
            g for g in kinds["gather"]
            if all(v.is_constant for v in g.lanes)
        ]
        assert len(const_gathers) == 1


class TestMultiNodeFormation:
    SOURCE = """
unsigned long A[64], B[64], C[64], D[64], E[64];
void kernel(long i) {
    A[i + 0] = A[i + 0] & (B[i + 0] + C[i + 0]) & (D[i + 0] + E[i + 0]);
    A[i + 1] = (D[i + 1] + E[i + 1]) & (B[i + 1] + C[i + 1]) & A[i + 1];
}
"""

    def test_chain_coarsened(self):
        _, _, graph, builder = build_graph(self.SOURCE)
        kinds = nodes_by_kind(graph)
        multis = [m for m in kinds["multi"] if m.opcode == "and"]
        assert len(multis) == 1
        multi = multis[0]
        assert len(multi.rows) == 2       # two & groups chained
        assert multi.num_operands == 3    # A, (B+C), (D+E)
        assert builder.stats.multi_nodes == 1

    def test_max_size_one_disables_coarsening(self):
        _, _, graph, _ = build_graph(
            self.SOURCE, BuildPolicy(multi_node_max_size=1)
        )
        kinds = nodes_by_kind(graph)
        for multi in kinds["multi"]:
            assert len(multi.rows) == 1

    def test_max_size_two_limits_depth(self):
        _, _, graph, _ = build_graph(
            self.SOURCE, BuildPolicy(multi_node_max_size=2)
        )
        kinds = nodes_by_kind(graph)
        assert all(len(m.rows) <= 2 for m in kinds["multi"])

    def test_operands_aligned_after_reorder(self):
        _, _, graph, _ = build_graph(self.SOURCE)
        multi = [m for m in nodes_by_kind(graph)["multi"]
                 if m.opcode == "and"][0]
        # after reordering, each operand group should be "uniform":
        # either all loads of the same array or all adds
        for group in multi.operand_groups:
            opcodes = {getattr(v, "opcode", "leaf") for v in group}
            assert len(opcodes) == 1

    def test_no_reorder_policy_keeps_original(self):
        _, _, graph, _ = build_graph(
            self.SOURCE, BuildPolicy(enable_reordering=False)
        )
        multi = [m for m in nodes_by_kind(graph)["multi"]
                 if m.opcode == "and"][0]
        mixed = [
            group for group in multi.operand_groups
            if len({getattr(v, "opcode", "leaf") for v in group}) > 1
        ]
        assert mixed  # without reordering the slots stay scrambled

    def test_escaping_value_not_absorbed(self):
        _, _, graph, _ = build_graph("""
unsigned long A[64], B[64], C[64], D[64];
void kernel(long i) {
    long t0 = B[i + 0] & C[i + 0];
    long t1 = B[i + 1] & C[i + 1];
    A[i + 0] = t0 & D[i + 0];
    A[i + 1] = t1 & D[i + 1];
    D[i + 0] = t0;
    D[i + 1] = t1;
}
""")
        multis = nodes_by_kind(graph)["multi"]
        # t0/t1 escape to the second store pair, so the & chain cannot
        # absorb them: every multi-node stays at size 1
        assert all(len(m.rows) == 1 for m in multis)


class TestGraphBookkeeping:
    def test_shared_subtree_reused(self):
        _, _, graph, _ = build_graph("""
double A[64], B[64];
void kernel(long i) {
    double x = B[i + 0];
    double y = B[i + 1];
    A[i + 0] = x * x;
    A[i + 1] = y * y;
}
""")
        load_nodes = [
            node for node in graph.walk()
            if isinstance(node, VectorizableNode) and node.opcode == "load"
        ]
        assert len(load_nodes) == 1
        multi = [n for n in graph.walk() if isinstance(n, MultiNode)][0]
        assert multi.children[0] is multi.children[1]

    def test_claimed_instructions_gather_on_second_use(self):
        # lane values used by two different groups in incompatible ways
        _, _, graph, _ = build_graph("""
long A[64], B[64], C[64];
void kernel(long i) {
    long t0 = B[i + 0] - C[i + 0];
    long t1 = B[i + 1] - C[i + 1];
    A[i + 0] = t0 - t1;
    A[i + 1] = t1 - t0;
}
""")
        # groups [t0, t1] and [t1, t0] cannot both vectorize; one gathers
        gathers = nodes_by_kind(graph)["gather"]
        assert gathers

    def test_duplicate_lanes_gather(self):
        _, _, graph, _ = build_graph("""
long A[64], B[64];
void kernel(long i) {
    long t = B[i] - 1;
    A[i + 0] = t - B[i + 2];
    A[i + 1] = t - B[i + 3];
}
""")
        splats = [g for g in nodes_by_kind(graph)["gather"] if g.is_splat]
        assert len(splats) == 1

    def test_stats_counters(self):
        _, _, _, builder = build_graph(TestMultiNodeFormation.SOURCE)
        stats = builder.stats
        assert stats.nodes > 0
        assert stats.reorders > 0
        assert stats.lookahead_evals >= 0
