"""Tests for vector code generation: emitted shapes, extracts, erasure."""

import pytest

from repro.interp import compare_runs
from repro.ir import verify_function
from repro.opt import compile_function, run_dce
from repro.slp import SLPVectorizer, VectorizerConfig
from tests.conftest import build_kernel


def vectorize(source, config=None, entry="kernel"):
    reference = build_kernel(source, entry)
    module, func = build_kernel(source, entry)
    vectorizer = SLPVectorizer(config or VectorizerConfig.lslp())
    report = vectorizer.run_function(func)
    verify_function(func)
    run_dce(func)
    verify_function(func)
    return reference, (module, func), report


def opcodes(func):
    return [inst.opcode for inst in func.entry]


class TestEmittedShapes:
    def test_copy_kernel_becomes_vload_vstore(self):
        _, (module, func), report = vectorize("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i + 0];
    A[i + 1] = B[i + 1];
}
""")
        assert report.num_vectorized == 1
        ops = opcodes(func)
        loads = [i for i in func.entry if i.opcode == "load"]
        stores = [i for i in func.entry if i.opcode == "store"]
        assert len(loads) == 1 and loads[0].type.is_vector
        assert len(stores) == 1 and stores[0].is_vector_store

    def test_vector_store_targets_lane0_address(self):
        ref, (module, func), _ = vectorize("""
long A[64], B[64];
void kernel(long i) {
    A[i + 1] = B[i + 1];
    A[i + 0] = B[i + 0];
}
""")
        out = compare_runs(ref, (module, func), args={"i": 4})
        assert out.equivalent, out.detail

    def test_constant_operands_become_vector_constant(self):
        _, (module, func), _ = vectorize("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i + 0] - 3;
    A[i + 1] = B[i + 1] - 4;
}
""")
        from repro.ir.values import VectorConstant

        subs = [i for i in func.entry if i.opcode == "sub"]
        assert len(subs) == 1
        assert isinstance(subs[0].rhs, VectorConstant)
        assert subs[0].rhs.values == (3, 4)

    def test_splat_operand(self):
        _, (module, func), report = vectorize("""
long A[64], B[64];
void kernel(long i, long k) {
    A[i + 0] = B[i + 0] - k;
    A[i + 1] = B[i + 1] - k;
}
""")
        assert report.num_vectorized == 1
        assert "splat" in opcodes(func)

    def test_mixed_gather_uses_insertelement(self):
        _, (module, func), report = vectorize("""
long A[64], B[64], C[64];
void kernel(long i, long k) {
    A[i + 0] = B[i + 0] - k;
    A[i + 1] = B[i + 1] - C[i];
}
""")
        if report.num_vectorized:
            assert "insertelement" in opcodes(func)

    def test_multinode_fold_count(self):
        _, (module, func), report = vectorize("""
unsigned long A[64], B[64], C[64], D[64];
void kernel(long i) {
    A[i + 0] = B[i + 0] & C[i + 0] & D[i + 0];
    A[i + 1] = D[i + 1] & B[i + 1] & C[i + 1];
}
""")
        assert report.num_vectorized == 1
        ands = [i for i in func.entry if i.opcode == "and"]
        # 3 operand slots -> 2 vector & instructions
        assert len(ands) == 2
        assert all(i.type.is_vector for i in ands)

    def test_scalar_tree_fully_erased(self):
        _, (module, func), report = vectorize("""
long A[64], B[64], C[64];
void kernel(long i) {
    A[i + 0] = B[i + 0] - C[i + 0];
    A[i + 1] = B[i + 1] - C[i + 1];
}
""")
        assert report.num_vectorized == 1
        scalar_arith = [
            i for i in func.entry
            if i.opcode in ("sub",) and not i.type.is_vector
        ]
        assert scalar_arith == []


class TestExternalUsers:
    def test_external_use_gets_extract(self):
        _, (module, func), report = vectorize("""
long A[64], B[64], C[64];
void kernel(long i) {
    long t0 = B[i + 0] - C[i + 0];
    long t1 = B[i + 1] - C[i + 1];
    A[i + 0] = t0;
    A[i + 1] = t1;
    A[i + 32] = t1;
}
""")
        assert report.num_vectorized == 1
        assert "extractelement" in opcodes(func)

    def test_external_use_correctness(self):
        source = """
long A[64], B[64], C[64];
void kernel(long i) {
    long t0 = B[i + 0] - C[i + 0];
    long t1 = B[i + 1] - C[i + 1];
    A[i + 0] = t0;
    A[i + 1] = t1;
    A[i + 32] = t0 * t1;
}
"""
        ref, transformed, report = vectorize(source)
        out = compare_runs(ref, transformed, args={"i": 3})
        assert out.equivalent, out.detail


class TestSchedulingGuards:
    def test_interposed_store_blocks_vectorization(self):
        _, (module, func), report = vectorize("""
long A[64], B[64];
void kernel(long i) {
    long t0 = B[i + 0];
    B[i + 1] = t0 + 5;
    long t1 = B[i + 1];
    A[i + 0] = t0;
    A[i + 1] = t1;
}
""")
        # moving the B loads past the B store would be illegal
        trees = [t for t in report.trees if t.kind == "store"]
        loads_vectorized = any(
            t.vectorized and "load" in t.description for t in trees
        )
        assert not loads_vectorized

    def test_store_groups_processed_independently(self):
        _, (module, func), report = vectorize("""
long A[64], B[64], C[64];
void kernel(long i) {
    A[i + 0] = B[i + 0];
    A[i + 1] = B[i + 1];
    C[i + 0] = B[i + 8];
    C[i + 1] = B[i + 9];
}
""")
        assert report.num_vectorized == 2


class TestDifferentialAcrossShapes:
    @pytest.mark.parametrize("offset", [0, 1, 7])
    def test_offsets(self, offset):
        source = """
long A[64], B[64], C[64];
void kernel(long i) {
    A[i + 0] = (B[i + 0] << 1) & (C[i + 0] << 2);
    A[i + 1] = (C[i + 1] << 3) & (B[i + 1] << 4);
}
"""
        ref, transformed, report = vectorize(source)
        assert report.num_vectorized == 1
        out = compare_runs(ref, transformed, args={"i": offset}, seed=offset)
        assert out.equivalent, out.detail

    @pytest.mark.parametrize("seed", range(5))
    def test_random_memory_seeds(self, seed):
        source = """
unsigned long A[64], B[64], C[64], D[64], E[64];
void kernel(long i) {
    A[i + 0] = A[i + 0] & (B[i + 0] + C[i + 0]) & (D[i + 0] + E[i + 0]);
    A[i + 1] = (D[i + 1] + E[i + 1]) & (B[i + 1] + C[i + 1]) & A[i + 1];
}
"""
        ref, transformed, report = vectorize(source)
        assert report.num_vectorized == 1
        out = compare_runs(ref, transformed, args={"i": 2}, seed=seed)
        assert out.equivalent, out.detail
