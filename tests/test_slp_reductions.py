"""Tests for reduction-seed vectorization (vsumsqr-style chains)."""

import pytest

from repro.analysis import AliasAnalysis, ScalarEvolution
from repro.costmodel import skylake_like
from repro.interp import compare_runs
from repro.ir import verify_function
from repro.opt import compile_function, run_dce
from repro.slp import (
    BuildPolicy,
    LookAheadContext,
    VectorizerConfig,
    collect_reduction_seeds,
    emit_reduction,
    plan_reduction,
)
from tests.conftest import build_kernel

FOUR_WIDE = """
double A[64], V[64];
void kernel(long i) {
    A[i] = V[i]*V[i] + V[i + 1]*V[i + 1]
         + V[i + 2]*V[i + 2] + V[i + 3]*V[i + 3];
}
"""


def plan_for(source, **policy_kwargs):
    module, func = build_kernel(source)
    # the pipeline always CSEs before vectorizing; match it here
    from repro.opt import run_cse

    run_cse(func)
    ctx = LookAheadContext(ScalarEvolution())
    (seed,) = collect_reduction_seeds(func.entry)
    plan = plan_reduction(
        seed, BuildPolicy(**policy_kwargs), skylake_like(), ctx
    )
    return module, func, seed, plan, ctx


class TestPlanning:
    def test_four_wide_plan(self):
        module, func, seed, plan, ctx = plan_for(FOUR_WIDE)
        assert plan is not None
        assert plan.vector_length == 4
        assert plan.total_cost < 0

    def test_three_wide_uses_vl2_and_is_not_profitable(self):
        module, func, seed, plan, ctx = plan_for("""
double A[64], V[64];
void kernel(long i) {
    A[i] = V[3*i]*V[3*i] + V[3*i + 1]*V[3*i + 1]
         + V[3*i + 2]*V[3*i + 2];
}
""")
        assert plan is not None
        assert plan.vector_length == 2
        # paper §5.2: vsumsqr's cost is identical for SLP and LSLP; in
        # our model the VL=2 reduction is exactly break-even
        assert plan.total_cost >= 0

    def test_gather_root_plan_rejected(self):
        module, func = build_kernel("""
double A[64], V[64];
void kernel(long i) {
    A[i] = V[i] + V[i + 7] + V[i + 13] + A[i + 9];
}
""")
        ctx = LookAheadContext(ScalarEvolution())
        (seed,) = collect_reduction_seeds(func.entry)
        plan = plan_reduction(seed, BuildPolicy(), skylake_like(), ctx)
        assert plan is None

    def test_overhead_accounting(self):
        module, func, seed, plan, ctx = plan_for(FOUR_WIDE)
        # log2(4)=2 steps: 2*(shuffle+vadd)=4, +1 extract, -3 scalar adds
        assert plan.reduction_overhead == 2


class TestEmission:
    def test_emitted_code_is_correct(self):
        reference = build_kernel(FOUR_WIDE)
        module, func, seed, plan, ctx = plan_for(FOUR_WIDE)
        assert emit_reduction(plan, AliasAnalysis(ctx.scev))
        verify_function(func)
        run_dce(func)
        verify_function(func)
        out = compare_runs(reference, (module, func), args={"i": 5})
        assert out.equivalent, out.detail

    def test_emitted_shape(self):
        module, func, seed, plan, ctx = plan_for(FOUR_WIDE)
        emit_reduction(plan, AliasAnalysis(ctx.scev))
        run_dce(func)
        ops = [inst.opcode for inst in func.entry]
        assert ops.count("shufflevector") == 2
        assert ops.count("extractelement") == 1
        vector_muls = [
            inst for inst in func.entry
            if inst.opcode == "fmul" and inst.type.is_vector
        ]
        assert len(vector_muls) == 1

    def test_leftover_operands_folded_scalar(self):
        source = """
double A[64], V[64];
void kernel(long i) {
    A[i] = V[i]*V[i] + V[i + 1]*V[i + 1] + V[i + 2]*V[i + 2]
         + V[i + 3]*V[i + 3] + V[i + 4]*V[i + 4];
}
"""
        reference = build_kernel(source)
        module, func, seed, plan, ctx = plan_for(source)
        assert plan.vector_length == 4  # 5 operands -> VL 4 + 1 leftover
        assert emit_reduction(plan, AliasAnalysis(ctx.scev))
        verify_function(func)
        out = compare_runs(reference, (module, func), args={"i": 5})
        assert out.equivalent, out.detail


class TestVectorizerIntegration:
    def test_pipeline_vectorizes_reduction(self):
        module, func = build_kernel(FOUR_WIDE)
        result = compile_function(func, VectorizerConfig.lslp())
        verify_function(func)
        reductions = [
            t for t in result.report.trees if t.kind == "reduction"
        ]
        assert len(reductions) == 1
        assert reductions[0].vectorized

    def test_reductions_can_be_disabled(self):
        from dataclasses import replace

        module, func = build_kernel(FOUR_WIDE)
        config = replace(VectorizerConfig.lslp(), enable_reductions=False)
        result = compile_function(func, config)
        assert all(t.kind != "reduction" for t in result.report.trees)
