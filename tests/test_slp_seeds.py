"""Tests for seed collection: store groups and reduction chains."""

import pytest

from repro.analysis import ScalarEvolution
from repro.costmodel import skylake_like, sse_like
from repro.slp import collect_reduction_seeds, collect_store_seeds
from tests.conftest import build_kernel


def store_seeds(source, target=None):
    module, func = build_kernel(source)
    target = target if target is not None else skylake_like()
    return module, func, collect_store_seeds(
        func.entry, ScalarEvolution(), target
    )


class TestStoreSeeds:
    def test_two_adjacent_stores(self):
        _, _, seeds = store_seeds("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i] + 1;
    A[i + 1] = B[i] + 2;
}
""")
        assert len(seeds) == 1
        assert seeds[0].vector_length == 2

    def test_program_order_does_not_matter(self):
        _, _, seeds = store_seeds("""
long A[64], B[64];
void kernel(long i) {
    A[i + 1] = B[i] + 2;
    A[i + 0] = B[i] + 1;
}
""")
        assert len(seeds) == 1
        # lanes are address-ordered, not program-ordered
        scev = ScalarEvolution()
        p0 = scev.access_pointer(seeds[0].stores[0])
        p1 = scev.access_pointer(seeds[0].stores[1])
        assert p1.index.constant_difference(p0.index) == -1

    def test_four_wide_group_preferred(self):
        _, _, seeds = store_seeds("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i] + 1;
    A[i + 1] = B[i] + 2;
    A[i + 2] = B[i] + 3;
    A[i + 3] = B[i] + 4;
}
""")
        assert len(seeds) == 1
        assert seeds[0].vector_length == 4

    def test_run_of_six_chunks_into_4_plus_2(self):
        lines = "\n".join(
            f"    A[i + {k}] = B[i] + {k};" for k in range(6)
        )
        _, _, seeds = store_seeds(
            f"long A[64], B[64];\nvoid kernel(long i) {{\n{lines}\n}}"
        )
        widths = sorted(s.vector_length for s in seeds)
        assert widths == [2, 4]

    def test_narrow_target_caps_width(self):
        _, _, seeds = store_seeds("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i] + 1;
    A[i + 1] = B[i] + 2;
    A[i + 2] = B[i] + 3;
    A[i + 3] = B[i] + 4;
}
""", target=sse_like())
        assert [s.vector_length for s in seeds] == [2, 2]

    def test_different_arrays_not_grouped(self):
        _, _, seeds = store_seeds("""
long A[64], B[64], C[64];
void kernel(long i) {
    A[i] = C[i] + 1;
    B[i] = C[i] + 2;
}
""")
        assert seeds == []

    def test_strided_stores_not_grouped(self):
        _, _, seeds = store_seeds("""
long A[64], B[64];
void kernel(long i) {
    A[2*i + 0] = B[i] + 1;
    A[2*i + 2] = B[i] + 2;
}
""")
        assert seeds == []

    def test_different_symbolic_parts_not_grouped(self):
        _, _, seeds = store_seeds("""
long A[64], B[64];
void kernel(long i, long j) {
    A[i] = B[i] + 1;
    A[j + 1] = B[i] + 2;
}
""")
        assert seeds == []

    def test_duplicate_offsets_dropped(self):
        _, _, seeds = store_seeds("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i] + 1;
    A[i + 0] = B[i] + 2;
    A[i + 1] = B[i] + 3;
}
""")
        assert seeds == []

    def test_dependent_stores_not_bundled(self):
        _, _, seeds = store_seeds("""
long A[64];
void kernel(long i) {
    A[i + 0] = A[i + 1] + 1;
    A[i + 1] = A[i + 0] + 2;
}
""")
        # the stores themselves are independent instructions, so they do
        # bundle (dependences flow through loads, handled at tree level)
        assert len(seeds) == 1

    def test_seed_alive_tracks_deleted_stores(self):
        module, func, seeds = store_seeds("""
long A[64], B[64];
void kernel(long i) {
    A[i + 0] = B[i] + 1;
    A[i + 1] = B[i] + 2;
}
""")
        group = seeds[0]
        assert group.alive()
        store = group.stores[0]
        store.parent.remove(store)
        assert not group.alive()


class TestReductionSeeds:
    def test_simple_sum_chain(self):
        module, func = build_kernel("""
double A[64], V[64];
void kernel(long i) {
    A[i] = V[i]*V[i] + V[i + 1]*V[i + 1] + V[i + 2]*V[i + 2];
}
""")
        seeds = collect_reduction_seeds(func.entry)
        assert len(seeds) == 1
        seed = seeds[0]
        assert seed.opcode == "fadd"
        assert len(seed.operands) == 3
        assert len(seed.chain) == 2

    def test_four_wide_chain(self):
        module, func = build_kernel("""
long A[64], V[64];
void kernel(long i) {
    A[i] = V[i] + V[i + 1] + V[i + 2] + V[i + 3];
}
""")
        seeds = collect_reduction_seeds(func.entry)
        assert len(seeds) == 1
        assert len(seeds[0].operands) == 4
        assert len(seeds[0].chain) == 3

    def test_short_chain_ignored(self):
        module, func = build_kernel("""
long A[64], V[64];
void kernel(long i) {
    A[i] = V[i] + V[i + 1];
}
""")
        assert collect_reduction_seeds(func.entry) == []

    def test_chain_with_multiple_uses_not_grown_through(self):
        module, func = build_kernel("""
long A[64], V[64];
void kernel(long i) {
    long t = V[i] + V[i + 1];
    A[i] = t + V[i + 2];
    A[i + 63] = t;
}
""")
        seeds = collect_reduction_seeds(func.entry)
        # t has two uses, so the chain stops at it: only 2 operands
        assert all(len(s.operands) < 3 for s in seeds)

    def test_mixed_opcodes_stop_chain(self):
        module, func = build_kernel("""
long A[64], V[64];
void kernel(long i) {
    A[i] = (V[i] * V[i + 1]) + V[i + 2] + V[i + 3];
}
""")
        (seed,) = collect_reduction_seeds(func.entry)
        assert seed.opcode == "add"
        assert len(seed.operands) == 3  # the mul is a frontier operand

    def test_non_commutative_not_a_reduction(self):
        module, func = build_kernel("""
long A[64], V[64];
void kernel(long i) {
    A[i] = V[i] - V[i + 1] - V[i + 2] - V[i + 3];
}
""")
        assert collect_reduction_seeds(func.entry) == []
