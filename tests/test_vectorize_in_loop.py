"""SLP inside loops that cannot be unrolled (paper §2.1: straight-line
vectorizers "can vectorize code within loops where the loop-vectorizer
fails").

A loop with a symbolic bound survives unrolling; the SLP pass still
vectorizes the straight-line region *inside* the loop body block.
"""

import pytest

from repro.interp import compare_runs
from repro.ir import verify_function
from repro.opt import compile_function
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel

IN_LOOP = """
long A[4096], B[4096], C[4096];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[4*j + 0] = B[4*j + 0] - C[4*j + 0];
        A[4*j + 1] = B[4*j + 1] - C[4*j + 1];
        A[4*j + 2] = B[4*j + 2] - C[4*j + 2];
        A[4*j + 3] = B[4*j + 3] - C[4*j + 3];
    }
}
"""

SCRAMBLED_IN_LOOP = """
long A[4096], B[4096], C[4096];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[2*j + 0] = (B[2*j + 0] << 1) & (C[2*j + 0] << 2);
        A[2*j + 1] = (C[2*j + 1] << 3) & (B[2*j + 1] << 4);
    }
}
"""


class TestVectorizeInsideLoop:
    def test_loop_body_vectorizes(self):
        module, func = build_kernel(IN_LOOP)
        result = compile_function(func, VectorizerConfig.lslp())
        verify_function(func)
        assert result.report.num_vectorized == 1
        # the loop structure survives; the body contains vector code
        assert len(func.blocks) == 4
        body = func.blocks[2]
        vector_stores = [
            inst for inst in body
            if inst.opcode == "store" and inst.is_vector_store
        ]
        assert len(vector_stores) == 1

    def test_loop_body_vectorization_correct(self):
        reference = build_kernel(IN_LOOP)
        module, func = build_kernel(IN_LOOP)
        compile_function(func, VectorizerConfig.lslp())
        outcome = compare_runs(reference, (module, func), args={"n": 9})
        assert outcome.equivalent, outcome.detail

    def test_vector_loop_body_is_faster(self):
        from repro.interp import Interpreter, MemoryImage

        def cycles_under(config):
            module, func = build_kernel(IN_LOOP)
            compile_function(func, config)
            memory = MemoryImage(module)
            memory.randomize(seed=2)
            return Interpreter(memory).run(func, {"n": 16}).cycles

        assert cycles_under(VectorizerConfig.lslp()) < cycles_under(
            VectorizerConfig.o3()
        )

    def test_scrambled_loop_body_needs_lslp(self):
        _, slp_func = build_kernel(SCRAMBLED_IN_LOOP)
        slp = compile_function(slp_func, VectorizerConfig.slp())
        _, lslp_func = build_kernel(SCRAMBLED_IN_LOOP)
        lslp = compile_function(lslp_func, VectorizerConfig.lslp())
        assert slp.report.num_vectorized == 0
        assert lslp.report.num_vectorized == 1

        reference = build_kernel(SCRAMBLED_IN_LOOP)
        module, func = build_kernel(SCRAMBLED_IN_LOOP)
        compile_function(func, VectorizerConfig.lslp())
        outcome = compare_runs(reference, (module, func), args={"n": 7})
        assert outcome.equivalent, outcome.detail

    def test_phi_operand_becomes_gather(self):
        """Lanes whose operand is the induction phi gather (splat),
        never group — phis are not vectorizable instructions."""
        source = """
long A[4096];
void kernel(long n) {
    for (long j = 0; j < n; j = j + 1) {
        A[2*j + 0] = j + 1;
        A[2*j + 1] = j + 2;
    }
}
"""
        reference = build_kernel(source)
        module, func = build_kernel(source)
        result = compile_function(func, VectorizerConfig.lslp())
        verify_function(func)
        outcome = compare_runs(reference, (module, func), args={"n": 5})
        assert outcome.equivalent, outcome.detail
        if result.report.num_vectorized:
            body = func.blocks[2]
            assert any(inst.opcode == "splat" for inst in body)
