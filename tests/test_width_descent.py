"""Tests for seed-width descent: a rejected wide store group is retried
at half width (as LLVM's SLP does)."""

import pytest

from repro.interp import compare_runs
from repro.ir import verify_function
from repro.opt import compile_function
from repro.slp import VectorizerConfig
from tests.conftest import build_kernel

# Lanes 0-1 vectorize cleanly; lanes 2-3 poison a 4-wide tree (their
# operand loads are non-consecutive strided accesses), so only the
# narrow retry wins.
HALF_GOOD = """
long A[1024], B[1024], C[1024];
void kernel(long i) {
    A[i + 0] = B[i + 0] - C[i + 0];
    A[i + 1] = B[i + 1] - C[i + 1];
    A[i + 2] = B[7*i + 64] - C[3*i + 99];
    A[i + 3] = B[5*i + 77] - C[2*i + 88];
}
"""


class TestWidthDescent:
    def test_half_width_rescue(self):
        module, func = build_kernel(HALF_GOOD)
        result = compile_function(func, VectorizerConfig.lslp())
        verify_function(func)
        records = [t for t in result.report.trees if t.kind == "store"]
        widths = sorted(t.vector_length for t in records)
        assert 4 in widths       # the wide attempt happened...
        assert not [t for t in records
                    if t.vector_length == 4 and t.vectorized]
        two_wide = [t for t in records
                    if t.vector_length == 2 and t.vectorized]
        assert two_wide          # ...and a half-width tree succeeded

    def test_half_width_result_correct(self):
        reference = build_kernel(HALF_GOOD)
        module, func = build_kernel(HALF_GOOD)
        compile_function(func, VectorizerConfig.lslp())
        outcome = compare_runs(reference, (module, func), args={"i": 4})
        assert outcome.equivalent, outcome.detail

    def test_no_descent_below_two(self):
        source = """
long A[1024], B[1024];
void kernel(long i) {
    A[i + 0] = B[9*i + 3] ^ 1;
    A[i + 1] = B[4*i + 55] ^ B[i + 200];
}
"""
        module, func = build_kernel(source)
        result = compile_function(func, VectorizerConfig.lslp())
        widths = [t.vector_length for t in result.report.trees]
        assert all(width >= 2 for width in widths)

    def test_descent_does_not_double_vectorize(self):
        # fully-vectorizable 4-wide group: one tree, no retries recorded
        source = """
long A[1024], B[1024];
void kernel(long i) {
    A[i + 0] = B[i + 0] ^ 1;
    A[i + 1] = B[i + 1] ^ 1;
    A[i + 2] = B[i + 2] ^ 1;
    A[i + 3] = B[i + 3] ^ 1;
}
"""
        module, func = build_kernel(source)
        result = compile_function(func, VectorizerConfig.lslp())
        records = [t for t in result.report.trees if t.kind == "store"]
        assert len(records) == 1
        assert records[0].vector_length == 4
        assert records[0].vectorized
